package rfd

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)

func TestPresetsValid(t *testing.T) {
	for name, p := range map[string]Params{"cisco": Cisco, "juniper": Juniper, "rfc7454": RFC7454} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s preset invalid: %v", name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []Params{
		{},
		{HalfLife: time.Minute}, // reuse 0
		{HalfLife: time.Minute, ReuseThreshold: 1000, SuppressThreshold: 500, MaxSuppressTime: time.Hour},
		{HalfLife: time.Minute, ReuseThreshold: 100, SuppressThreshold: 500}, // no max suppress
		{HalfLife: time.Minute, ReuseThreshold: 100, SuppressThreshold: 500,
			MaxSuppressTime: time.Hour, WithdrawalPenalty: -1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid params did not panic")
		}
	}()
	New[string](Params{})
}

func TestMaxPenaltyFormula(t *testing.T) {
	// Cisco: reuse 750, maxsuppress 60min, halflife 15min => 750 * 2^4 = 12000.
	if got := Cisco.MaxPenalty(); math.Abs(got-12000) > 1e-9 {
		t.Errorf("Cisco MaxPenalty = %g, want 12000", got)
	}
}

func TestSingleFlapDoesNotSuppress(t *testing.T) {
	d := New[string](Cisco)
	if d.Record("k", t0, EventWithdraw) {
		t.Error("one withdrawal suppressed the route")
	}
	if got := d.Penalty("k", t0); got != 1000 {
		t.Errorf("penalty = %g", got)
	}
}

func TestRapidFlapsSuppress(t *testing.T) {
	d := New[string](Cisco)
	now := t0
	suppressed := false
	// Withdraw/announce every 30 s: the 3rd withdrawal pushes past 2000.
	for i := 0; i < 10 && !suppressed; i++ {
		suppressed = d.Record("k", now, EventWithdraw)
		now = now.Add(30 * time.Second)
		if !suppressed {
			suppressed = d.Record("k", now, EventReadvertise)
		}
		now = now.Add(30 * time.Second)
	}
	if !suppressed {
		t.Fatal("rapid flapping never suppressed")
	}
}

func TestPenaltyDecaysByHalfLife(t *testing.T) {
	d := New[string](Cisco)
	d.Record("k", t0, EventWithdraw)
	if got := d.Penalty("k", t0.Add(15*time.Minute)); math.Abs(got-500) > 1e-6 {
		t.Errorf("after one half-life penalty = %g, want 500", got)
	}
	if got := d.Penalty("k", t0.Add(30*time.Minute)); math.Abs(got-250) > 1e-6 {
		t.Errorf("after two half-lives penalty = %g, want 250", got)
	}
}

func suppress(t *testing.T, d *Damper[string], key string, start time.Time) time.Time {
	t.Helper()
	now := start
	for i := 0; i < 20; i++ {
		if d.Record(key, now, EventWithdraw) {
			return now
		}
		now = now.Add(time.Minute)
		if d.Record(key, now, EventReadvertise) {
			return now
		}
		now = now.Add(time.Minute)
	}
	t.Fatal("could not reach suppression")
	return time.Time{}
}

func TestReuseThresholdRelease(t *testing.T) {
	d := New[string](Cisco)
	when := suppress(t, d, "k", t0)
	if !d.Suppressed("k", when) {
		t.Fatal("should be suppressed")
	}
	reuse, ok := d.ReuseAt("k", when)
	if !ok {
		t.Fatal("ReuseAt not ok while suppressed")
	}
	if !reuse.After(when) {
		t.Fatalf("reuse %v not after suppression %v", reuse, when)
	}
	// Just before release: still suppressed; just after: released.
	if !d.Suppressed("k", reuse.Add(-time.Second)) {
		t.Error("released before reuse time")
	}
	if d.Suppressed("k", reuse.Add(time.Second)) {
		t.Error("still suppressed after reuse time")
	}
}

func TestMaxSuppressTimeBoundsReleaseAfterFlappingStops(t *testing.T) {
	// Pump the penalty to its ceiling with continuous flapping, then stop.
	// The ceiling is defined so that decay from it to the reuse threshold
	// takes exactly MaxSuppressTime — the mechanism real implementations use
	// to honor max-suppress-time.
	d := New[string](Cisco)
	when := suppress(t, d, "k", t0)
	stop := when
	for i := 0; i < 400; i++ {
		stop = stop.Add(30 * time.Second)
		d.Record("k", stop, EventWithdraw)
	}
	// While flapping continues, suppression persists (the paper's
	// indefinite-suppression caveat for too-short Breaks).
	if !d.Suppressed("k", stop) {
		t.Fatal("suppression lifted during continuous flapping")
	}
	// After the last flap, release must land at stop+MaxSuppressTime.
	if !d.Suppressed("k", stop.Add(Cisco.MaxSuppressTime-time.Minute)) {
		t.Error("released before max-suppress window elapsed from ceiling")
	}
	if d.Suppressed("k", stop.Add(Cisco.MaxSuppressTime+time.Minute)) {
		t.Error("suppression outlived max-suppress-time after flapping stopped")
	}
}

func TestReuseAtFromCeilingEqualsMaxSuppress(t *testing.T) {
	d := New[string](Cisco)
	when := suppress(t, d, "k", t0)
	// Pump the penalty to the ceiling.
	now := when
	for i := 0; i < 400; i++ {
		now = now.Add(10 * time.Second)
		d.Record("k", now, EventWithdraw)
	}
	reuse, ok := d.ReuseAt("k", now)
	if !ok {
		t.Fatal("not suppressed?")
	}
	got := reuse.Sub(now)
	if got > Cisco.MaxSuppressTime+time.Second || got < Cisco.MaxSuppressTime-time.Minute {
		t.Errorf("reuse delay from ceiling = %v, want ~%v", got, Cisco.MaxSuppressTime)
	}
}

func TestAttrChangePenalty(t *testing.T) {
	d := New[string](Cisco)
	d.Record("k", t0, EventAttrChange)
	if got := d.Penalty("k", t0); got != 500 {
		t.Errorf("attr-change penalty = %g", got)
	}
}

func TestJuniperSuppressesSlowerThanCisco(t *testing.T) {
	// Juniper has a higher threshold (3000) but also penalises
	// re-advertisements; for a pure withdraw/announce beacon both engines
	// suppress, Cisco on fewer events for slow flaps.
	flapsUntilSuppressed := func(p Params, interval time.Duration) int {
		d := New[string](p)
		now := t0
		for i := 1; i <= 100; i++ {
			ev := EventWithdraw
			if i%2 == 0 {
				ev = EventReadvertise
			}
			if d.Record("k", now, ev) {
				return i
			}
			now = now.Add(interval)
		}
		return -1
	}
	c := flapsUntilSuppressed(Cisco, 4*time.Minute)
	j := flapsUntilSuppressed(Juniper, 4*time.Minute)
	if c < 0 {
		t.Fatal("Cisco never suppressed 4-minute flapping")
	}
	if j < 0 {
		t.Fatal("Juniper never suppressed 4-minute flapping")
	}
	if j < c {
		// Juniper adds 1000 on readvertise too, so it actually reaches 3000
		// faster in events; just sanity-check both are plausible.
		t.Logf("juniper=%d cisco=%d", j, c)
	}
}

func TestDampsIntervalMatchesPaperExpectations(t *testing.T) {
	// Paper § 4.3: vendor defaults damp prefixes flapping at least every
	// ~8-9 minutes; RIPE/IETF recommended parameters need ~2 minutes.
	if !Cisco.DampsInterval(1 * time.Minute) {
		t.Error("Cisco should damp 1-minute flapping")
	}
	if !Cisco.DampsInterval(5 * time.Minute) {
		t.Error("Cisco should damp 5-minute flapping")
	}
	if Cisco.DampsInterval(10 * time.Minute) {
		t.Error("Cisco should NOT damp 10-minute flapping")
	}
	if !RFC7454.DampsInterval(1 * time.Minute) {
		t.Error("RFC7454 should damp 1-minute flapping")
	}
	if !RFC7454.DampsInterval(2 * time.Minute) {
		t.Error("RFC7454 should damp 2-minute flapping (paper chose 2 min for this)")
	}
	if RFC7454.DampsInterval(5 * time.Minute) {
		t.Error("RFC7454 should NOT damp 5-minute flapping")
	}
}

func TestResetClearsState(t *testing.T) {
	d := New[string](Cisco)
	suppress(t, d, "k", t0)
	d.Reset("k")
	if d.Suppressed("k", t0) {
		t.Error("suppressed after reset")
	}
	if d.Len() != 0 {
		t.Errorf("Len = %d after reset", d.Len())
	}
}

func TestIndependentKeys(t *testing.T) {
	d := New[string](Cisco)
	suppress(t, d, "a", t0)
	if d.Suppressed("b", t0.Add(time.Hour)) {
		t.Error("key b inherited key a's suppression")
	}
	if d.Penalty("b", t0) != 0 {
		t.Error("unknown key has penalty")
	}
}

func TestReuseAtNotSuppressed(t *testing.T) {
	d := New[string](Cisco)
	d.Record("k", t0, EventWithdraw)
	if _, ok := d.ReuseAt("k", t0); ok {
		t.Error("ReuseAt ok for unsuppressed key")
	}
	if _, ok := d.ReuseAt("missing", t0); ok {
		t.Error("ReuseAt ok for missing key")
	}
}

func TestPenaltyMonotoneDecayProperty(t *testing.T) {
	d := New[string](Cisco)
	d.Record("k", t0, EventWithdraw)
	d.Record("k", t0.Add(time.Minute), EventWithdraw)
	f := func(m1, m2 uint16) bool {
		a := time.Duration(m1%600) * time.Minute
		b := a + time.Duration(m2%600)*time.Minute
		// Later reads must never show a higher penalty (no events between).
		// Query in increasing time order since reads advance internal decay.
		pa := d.Penalty("k", t0.Add(2*time.Minute).Add(a))
		pb := d.Penalty("k", t0.Add(2*time.Minute).Add(b))
		return pb <= pa+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSuppressionSignatureTimescale(t *testing.T) {
	// The labeling stage relies on suppression lasting >> propagation time.
	// Cisco defaults with a 1-minute beacon must suppress for well over
	// 5 minutes (the paper's minimum r-delta).
	d := New[string](Cisco)
	when := suppress(t, d, "k", t0)
	reuse, _ := d.ReuseAt("k", when)
	if reuse.Sub(when) < 5*time.Minute {
		t.Errorf("suppression only %v, labeling assumption broken", reuse.Sub(when))
	}
}

func TestEventString(t *testing.T) {
	if EventWithdraw.String() != "withdraw" ||
		EventReadvertise.String() != "readvertise" ||
		EventAttrChange.String() != "attr-change" ||
		Event(9).String() != "event(9)" {
		t.Error("Event.String wrong")
	}
}

func TestDecayToIsStableAcrossReads(t *testing.T) {
	// Two reads at the same instant must agree (lazy decay is idempotent).
	d := New[string](Cisco)
	d.Record("k", t0, EventWithdraw)
	at := t0.Add(7 * time.Minute)
	p1 := d.Penalty("k", at)
	p2 := d.Penalty("k", at)
	if p1 != p2 {
		t.Errorf("reads at same instant differ: %g vs %g", p1, p2)
	}
}

func TestAggressiveLegacyDampsSlowFlapping(t *testing.T) {
	if err := AggressiveLegacy.Validate(); err != nil {
		t.Fatal(err)
	}
	if !AggressiveLegacy.CanSuppress() {
		t.Fatal("aggressive preset cannot suppress")
	}
	// The August 2019 pilot: only the 15-minute beacon provoked RFD.
	if !AggressiveLegacy.DampsInterval(15 * time.Minute) {
		t.Error("aggressive preset should damp 15-minute flapping")
	}
	if AggressiveLegacy.DampsInterval(60 * time.Minute) {
		t.Error("aggressive preset should not damp 60-minute flapping")
	}
	// Default vendor configs do NOT damp 15-minute flapping: the pilot's
	// other prefixes (30/60 min) stayed clean everywhere.
	if Cisco.DampsInterval(15 * time.Minute) {
		t.Error("Cisco defaults should not damp 15-minute flapping")
	}
	if Juniper.DampsInterval(15 * time.Minute) {
		t.Error("Juniper defaults should not damp 15-minute flapping")
	}
}
