package rfd

import (
	"testing"
	"time"
)

// TestPresetValuesMatchPaper pins every Appendix B parameter preset to
// the paper's numbers, field by field. These constants ARE the paper's
// Table/Appendix data — any drift silently re-tunes every experiment, so
// a change here must be a deliberate, reviewed decision.
func TestPresetValuesMatchPaper(t *testing.T) {
	cases := []struct {
		name string
		got  Params
		want Params
	}{
		{"cisco", Cisco, Params{
			WithdrawalPenalty:      1000,
			ReadvertisementPenalty: 0,
			AttrChangePenalty:      500,
			SuppressThreshold:      2000,
			ReuseThreshold:         750,
			HalfLife:               15 * time.Minute,
			MaxSuppressTime:        60 * time.Minute,
		}},
		{"juniper", Juniper, Params{
			WithdrawalPenalty:      1000,
			ReadvertisementPenalty: 1000,
			AttrChangePenalty:      500,
			SuppressThreshold:      3000,
			ReuseThreshold:         750,
			HalfLife:               15 * time.Minute,
			MaxSuppressTime:        60 * time.Minute,
		}},
		{"rfc7454", RFC7454, Params{
			WithdrawalPenalty:      1000,
			ReadvertisementPenalty: 1000,
			AttrChangePenalty:      500,
			SuppressThreshold:      6000,
			ReuseThreshold:         750,
			HalfLife:               15 * time.Minute,
			MaxSuppressTime:        60 * time.Minute,
		}},
		{"aggressive-legacy", AggressiveLegacy, Params{
			WithdrawalPenalty:      1000,
			ReadvertisementPenalty: 0,
			AttrChangePenalty:      500,
			SuppressThreshold:      2000,
			ReuseThreshold:         750,
			HalfLife:               45 * time.Minute,
			MaxSuppressTime:        180 * time.Minute,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.got != tc.want {
				t.Errorf("%s preset drifted from the paper:\n got %+v\nwant %+v", tc.name, tc.got, tc.want)
			}
			if err := tc.got.Validate(); err != nil {
				t.Errorf("%s preset does not validate: %v", tc.name, err)
			}
			if !tc.got.CanSuppress() {
				t.Errorf("%s preset cannot suppress at all", tc.name)
			}
		})
	}
}

// TestPresetCanonicalForms pins the canonical render of each preset — the
// exact strings the scenario goldens embed.
func TestPresetCanonicalForms(t *testing.T) {
	cases := map[string]string{
		"cisco":             "withdrawal=1000 readvertisement=0 attr-change=500 suppress=2000 reuse=750 half-life=15m0s max-suppress=1h0m0s",
		"juniper":           "withdrawal=1000 readvertisement=1000 attr-change=500 suppress=3000 reuse=750 half-life=15m0s max-suppress=1h0m0s",
		"rfc7454":           "withdrawal=1000 readvertisement=1000 attr-change=500 suppress=6000 reuse=750 half-life=15m0s max-suppress=1h0m0s",
		"aggressive-legacy": "withdrawal=1000 readvertisement=0 attr-change=500 suppress=2000 reuse=750 half-life=45m0s max-suppress=3h0m0s",
	}
	presets := map[string]Params{
		"cisco": Cisco, "juniper": Juniper, "rfc7454": RFC7454, "aggressive-legacy": AggressiveLegacy,
	}
	for name, want := range cases {
		if got := presets[name].Canonical(); got != want {
			t.Errorf("%s Canonical() = %q, want %q", name, got, want)
		}
	}
}
