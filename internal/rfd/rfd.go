// Package rfd implements BGP Route Flap Damping (RFC 2439): the per-prefix,
// per-session penalty state machine that the paper measures in the wild.
//
// A damper maintains an exponentially decaying penalty for each key (the
// router simulator keys by (neighbor, prefix)). Announcements, withdrawals
// and attribute changes add to the penalty; when it exceeds the
// suppress-threshold the route is suppressed, and it is released again when
// the penalty decays below the reuse-threshold. Max-suppress-time is
// honored through the penalty ceiling: the penalty is clamped to the value
// that decays to the reuse-threshold in exactly max-suppress-time, so once
// flapping stops release happens within that bound (and continuous flapping
// suppresses indefinitely, as the paper's Break sizing discussion notes).
//
// The three parameter presets of the paper's Appendix B (Cisco, Juniper,
// RFC 7454 / RIPE-580 recommendations) are provided as ready-made Params.
package rfd

import (
	"fmt"
	"math"
	"time"
)

// Params is an RFD configuration. All penalties are in the dimensionless
// penalty units of RFC 2439 (a flap costs ~1000).
type Params struct {
	// WithdrawalPenalty is added when the route is withdrawn.
	WithdrawalPenalty float64
	// ReadvertisementPenalty is added when a withdrawn route is
	// re-advertised (0 on Cisco, 1000 on Juniper).
	ReadvertisementPenalty float64
	// AttrChangePenalty is added when a route is re-advertised with changed
	// attributes.
	AttrChangePenalty float64
	// SuppressThreshold: exceeding it suppresses the route.
	SuppressThreshold float64
	// ReuseThreshold: decaying below it releases a suppressed route.
	ReuseThreshold float64
	// HalfLife of the exponential penalty decay.
	HalfLife time.Duration
	// MaxSuppressTime caps how long a route stays suppressed.
	MaxSuppressTime time.Duration
}

// Presets from the paper's Appendix B.
var (
	// Cisco vendor defaults (deprecated by RIPE-580 but still shipped).
	Cisco = Params{
		WithdrawalPenalty:      1000,
		ReadvertisementPenalty: 0,
		AttrChangePenalty:      500,
		SuppressThreshold:      2000,
		ReuseThreshold:         750,
		HalfLife:               15 * time.Minute,
		MaxSuppressTime:        60 * time.Minute,
	}
	// Juniper vendor defaults.
	Juniper = Params{
		WithdrawalPenalty:      1000,
		ReadvertisementPenalty: 1000,
		AttrChangePenalty:      500,
		SuppressThreshold:      3000,
		ReuseThreshold:         750,
		HalfLife:               15 * time.Minute,
		MaxSuppressTime:        60 * time.Minute,
	}
	// RFC7454 is the IETF/RIPE recommended configuration (suppress at 6000),
	// which only damps genuinely noisy prefixes.
	RFC7454 = Params{
		WithdrawalPenalty:      1000,
		ReadvertisementPenalty: 1000,
		AttrChangePenalty:      500,
		SuppressThreshold:      6000,
		ReuseThreshold:         750,
		HalfLife:               15 * time.Minute,
		MaxSuppressTime:        60 * time.Minute,
	}
)

// Validate reports a descriptive error for configurations the state machine
// cannot run with.
func (p Params) Validate() error {
	switch {
	case p.HalfLife <= 0:
		return fmt.Errorf("rfd: half-life must be positive, got %v", p.HalfLife)
	case p.ReuseThreshold <= 0:
		return fmt.Errorf("rfd: reuse-threshold must be positive, got %g", p.ReuseThreshold)
	case p.SuppressThreshold <= p.ReuseThreshold:
		return fmt.Errorf("rfd: suppress-threshold %g must exceed reuse-threshold %g",
			p.SuppressThreshold, p.ReuseThreshold)
	case p.MaxSuppressTime <= 0:
		return fmt.Errorf("rfd: max-suppress-time must be positive, got %v", p.MaxSuppressTime)
	case p.WithdrawalPenalty < 0 || p.ReadvertisementPenalty < 0 || p.AttrChangePenalty < 0:
		return fmt.Errorf("rfd: penalties must be non-negative")
	}
	return nil
}

// MaxPenalty returns the penalty ceiling implied by the configuration: the
// value from which the penalty decays to exactly the reuse-threshold over
// max-suppress-time (RFC 2439 § 4.2 — clamping here bounds suppression to
// max-suppress-time even under continuous flapping).
func (p Params) MaxPenalty() float64 {
	return p.ReuseThreshold * math.Exp2(p.MaxSuppressTime.Minutes()/p.HalfLife.Minutes())
}

// CanSuppress reports whether the configuration can suppress at all: when
// the max-suppress penalty ceiling does not exceed the suppress-threshold,
// the penalty is clamped below the trigger and damping never fires — a
// real-world misconfiguration trap when operators lower max-suppress-time
// without shortening the half-life.
func (p Params) CanSuppress() bool {
	return p.MaxPenalty() > p.SuppressThreshold
}

// DampsInterval predicts whether a beacon that alternates withdrawal and
// announcement every interval will eventually be suppressed under p. It
// iterates the penalty recurrence to its fixed point; used to choose beacon
// update intervals in the experiment harness (§ 4.3 of the paper).
func (p Params) DampsInterval(interval time.Duration) bool {
	if err := p.Validate(); err != nil {
		return false
	}
	decay := math.Exp2(-interval.Minutes() / p.HalfLife.Minutes())
	penalty := 0.0
	ceiling := p.MaxPenalty()
	// One beacon cycle = withdrawal then announcement, each spaced by
	// interval. Iterate enough cycles to reach steady state of a 2h burst.
	steps := int((2 * time.Hour) / interval)
	if steps > 4096 {
		steps = 4096
	}
	withdrawal := true
	for i := 0; i < steps; i++ {
		penalty *= decay
		if withdrawal {
			penalty += p.WithdrawalPenalty
		} else {
			penalty += p.ReadvertisementPenalty
		}
		if penalty > ceiling {
			penalty = ceiling
		}
		if penalty > p.SuppressThreshold {
			return true
		}
		withdrawal = !withdrawal
	}
	return false
}

// Event is the kind of route change fed to the damper.
type Event uint8

// Damping events.
const (
	// EventWithdraw is a route withdrawal.
	EventWithdraw Event = iota
	// EventReadvertise is an announcement of a previously withdrawn route.
	EventReadvertise
	// EventAttrChange is a re-announcement with changed path attributes.
	EventAttrChange
)

func (e Event) String() string {
	switch e {
	case EventWithdraw:
		return "withdraw"
	case EventReadvertise:
		return "readvertise"
	case EventAttrChange:
		return "attr-change"
	default:
		return fmt.Sprintf("event(%d)", uint8(e))
	}
}

// state is the per-key damping record.
type state struct {
	penalty    float64
	lastDecay  time.Time
	suppressed bool
}

// Damper runs the RFC 2439 state machine for a set of keys (typically
// (neighbor, prefix) pairs). The zero value is not usable; construct with
// New. Damper is not safe for concurrent use; the event-driven router owns
// one per session and drives it from a single goroutine.
type Damper[K comparable] struct {
	params Params
	states map[K]*state
}

// New returns a Damper with the given parameters. It panics on an invalid
// configuration — a misconfigured damper is a programming error in the
// simulator, not a runtime condition.
func New[K comparable](p Params) *Damper[K] {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Damper[K]{params: p, states: make(map[K]*state)}
}

// Params returns the damper's configuration.
func (d *Damper[K]) Params() Params { return d.params }

// decayTo brings the state's penalty forward to now.
func (d *Damper[K]) decayTo(s *state, now time.Time) {
	if dt := now.Sub(s.lastDecay); dt > 0 {
		s.penalty *= math.Exp2(-dt.Minutes() / d.params.HalfLife.Minutes())
		s.lastDecay = now
	}
}

// maybeRelease applies the reuse-threshold release rule. Max-suppress-time
// is enforced through the penalty ceiling (see Params.MaxPenalty), not a
// timer: that is how deployed implementations bound suppression, and it is
// why continuous flapping can suppress a prefix indefinitely — the behavior
// the paper's Break phases are sized around (§ 4.3).
func (d *Damper[K]) maybeRelease(s *state) {
	if s.suppressed && s.penalty < d.params.ReuseThreshold {
		s.suppressed = false
	}
}

// Record feeds one event for key at time now and reports whether the route
// is suppressed afterwards.
func (d *Damper[K]) Record(key K, now time.Time, ev Event) (suppressed bool) {
	s := d.states[key]
	if s == nil {
		s = &state{lastDecay: now}
		d.states[key] = s
	}
	d.decayTo(s, now)
	d.maybeRelease(s)
	switch ev {
	case EventWithdraw:
		s.penalty += d.params.WithdrawalPenalty
	case EventReadvertise:
		s.penalty += d.params.ReadvertisementPenalty
	case EventAttrChange:
		s.penalty += d.params.AttrChangePenalty
	}
	if ceiling := d.params.MaxPenalty(); s.penalty > ceiling {
		s.penalty = ceiling
	}
	if !s.suppressed && s.penalty > d.params.SuppressThreshold {
		s.suppressed = true
	}
	return s.suppressed
}

// Suppressed reports whether key is suppressed at time now, applying decay
// and the release rules first.
func (d *Damper[K]) Suppressed(key K, now time.Time) bool {
	s := d.states[key]
	if s == nil {
		return false
	}
	d.decayTo(s, now)
	d.maybeRelease(s)
	return s.suppressed
}

// Penalty returns the decayed penalty for key at time now (0 for unknown
// keys).
func (d *Damper[K]) Penalty(key K, now time.Time) float64 {
	s := d.states[key]
	if s == nil {
		return 0
	}
	d.decayTo(s, now)
	return s.penalty
}

// ReuseAt returns the time at or after now when a currently suppressed key
// will be released assuming no further events, and true; it returns
// ok=false when the key is not suppressed at now. Release is the
// reuse-threshold crossing of the decay curve; because the penalty is
// clamped to the max-suppress ceiling, this is never more than
// max-suppress-time away. The router uses it to schedule the
// re-advertisement event.
func (d *Damper[K]) ReuseAt(key K, now time.Time) (time.Time, bool) {
	s := d.states[key]
	if s == nil {
		return time.Time{}, false
	}
	d.decayTo(s, now)
	d.maybeRelease(s)
	if !s.suppressed {
		return time.Time{}, false
	}
	// Time for penalty to decay to the reuse threshold:
	// penalty * 2^(-t/halfLife) = reuse  =>  t = halfLife * log2(penalty/reuse).
	minutes := d.params.HalfLife.Minutes() * math.Log2(s.penalty/d.params.ReuseThreshold)
	return now.Add(time.Duration(minutes * float64(time.Minute))), true
}

// Reset clears all state for key (e.g. on session reset, RFC 2439 § 4.8.4).
func (d *Damper[K]) Reset(key K) { delete(d.states, key) }

// Len returns the number of keys with damping state, for introspection and
// leak tests.
func (d *Damper[K]) Len() int { return len(d.states) }

// AggressiveLegacy is a real-world "tightened" configuration some operators
// carried over from the 1990s guidance: vendor-default thresholds with a
// longer half-life, which damps even slow (15-minute) flapping — the
// behavior the paper's August 2019 pilot detected at its fastest interval.
var AggressiveLegacy = Params{
	WithdrawalPenalty:      1000,
	ReadvertisementPenalty: 0,
	AttrChangePenalty:      500,
	SuppressThreshold:      2000,
	ReuseThreshold:         750,
	HalfLife:               45 * time.Minute,
	MaxSuppressTime:        180 * time.Minute,
}
