package label

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"because/internal/bgp"
	"because/internal/collector"
)

// jsonMeasurement is the stable on-disk form of a Measurement, compatible
// with cmd/becausectl's input schema: "path"/"positive" drive the
// inference, the remaining fields preserve provenance.
type jsonMeasurement struct {
	Path     []uint32 `json:"path"`
	Positive bool     `json:"positive"`
	// Provenance.
	VPAS       uint32  `json:"vp_as"`
	Project    string  `json:"project"`
	Prefix     string  `json:"prefix"`
	Site       uint32  `json:"site"`
	PairsTotal int     `json:"pairs_total"`
	PairsRFD   int     `json:"pairs_rfd"`
	RDeltasSec []int64 `json:"rdeltas_sec,omitempty"`
}

// WriteJSON serialises measurements as a JSON array. The "path" field is
// the tomography portion (origin removed), so the file feeds straight into
// cmd/becausectl.
func WriteJSON(w io.Writer, ms []Measurement) error {
	out := make([]jsonMeasurement, 0, len(ms))
	for _, m := range ms {
		jm := jsonMeasurement{
			Positive:   m.RFD,
			VPAS:       uint32(m.VP.AS),
			Project:    m.VP.Project.String(),
			Prefix:     m.Prefix.String(),
			Site:       uint32(m.Site),
			PairsTotal: m.PairsTotal,
			PairsRFD:   m.PairsRFD,
		}
		for _, a := range m.TomographyPath() {
			jm.Path = append(jm.Path, uint32(a))
		}
		for _, d := range m.RDeltas {
			jm.RDeltasSec = append(jm.RDeltasSec, int64(d/time.Second))
		}
		if len(jm.Path) == 0 {
			continue // nothing for the tomography to use
		}
		out = append(out, jm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses measurements written by WriteJSON. Provenance fields are
// restored as far as the schema carries them; the path is re-extended with
// the site as origin so TomographyPath returns the stored path again.
func ReadJSON(r io.Reader) ([]Measurement, error) {
	var in []jsonMeasurement
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("label: parsing measurements: %w", err)
	}
	var out []Measurement
	for k, jm := range in {
		if len(jm.Path) == 0 {
			return nil, fmt.Errorf("label: measurement %d has an empty path", k)
		}
		m := Measurement{
			RFD:        jm.Positive,
			Site:       bgp.ASN(jm.Site),
			PairsTotal: jm.PairsTotal,
			PairsRFD:   jm.PairsRFD,
			VP:         collector.VantagePoint{AS: bgp.ASN(jm.VPAS), Project: projectByName(jm.Project)},
		}
		if jm.Prefix != "" {
			p, err := parsePrefix(jm.Prefix)
			if err != nil {
				return nil, fmt.Errorf("label: measurement %d: %w", k, err)
			}
			m.Prefix = p
		}
		for _, a := range jm.Path {
			m.Path = append(m.Path, bgp.ASN(a))
		}
		m.Path = append(m.Path, m.Site) // origin back at the tail
		for _, s := range jm.RDeltasSec {
			m.RDeltas = append(m.RDeltas, time.Duration(s)*time.Second)
		}
		out = append(out, m)
	}
	return out, nil
}

func projectByName(name string) collector.Project {
	for _, p := range collector.Projects {
		if p.String() == name {
			return p
		}
	}
	return collector.RIS
}

func parsePrefix(s string) (bgp.Prefix, error) {
	var p bgp.Prefix
	if err := p.UnmarshalText([]byte(s)); err != nil {
		return p, err
	}
	return p, nil
}
