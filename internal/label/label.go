// Package label implements the paper's path-labeling stage (§ 4.2): it
// searches archived vantage-point feeds for the RFD signature and labels
// each observed AS path, per Burst-Break pair, as damped or not.
//
// The signature (Figure 5) is a re-advertisement: after the Burst ends with
// an announcement, a path that crossed a damping AS stays quiet and then
// re-appears minutes later, when the penalty decays below the reuse
// threshold. An update counts as a re-advertisement only if the time since
// the final Burst update (r-delta) exceeds the normal propagation time —
// 5 minutes by default, which cleanly separates RFD from MRAI and
// propagation jitter. A path is labeled RFD when at least 90% of its
// Burst-Break pairs match, absorbing infrastructure noise such as session
// resets.
package label

import (
	"context"
	"fmt"
	"sort"
	"time"

	"because/internal/beacon"
	"because/internal/bgp"
	"because/internal/collector"
	"because/internal/obs"
)

// Config tunes the labeling rules; zero values select the paper's settings.
type Config struct {
	// MinRDelta is the minimum re-advertisement delta (default 5 min).
	MinRDelta time.Duration
	// PropagationAllowance is how long after the nominal Burst end an
	// update can still be attributed to the Burst (propagation + MRAI +
	// collector export batching; default 2 min).
	PropagationAllowance time.Duration
	// RFDShare is the minimum share of matching pairs (default 0.9).
	RFDShare float64
	// Obs attaches metrics and logging: paths labeled, RFD signatures
	// found, Burst-Break pairs classified, plus the stage span. Nil (the
	// default) disables instrumentation.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.MinRDelta == 0 {
		c.MinRDelta = 5 * time.Minute
	}
	if c.PropagationAllowance == 0 {
		c.PropagationAllowance = 2 * time.Minute
	}
	if c.RFDShare == 0 {
		c.RFDShare = 0.9
	}
	return c
}

// Measurement is one labeled path: a (vantage point, prefix, AS path)
// triple with its per-pair RFD evidence.
type Measurement struct {
	VP     collector.VantagePoint
	Prefix bgp.Prefix
	// Site is the beacon origin AS.
	Site bgp.ASN
	// Path is the cleaned AS path, vantage point first, origin last.
	Path []bgp.ASN
	// RFD is the final label.
	RFD bool
	// PairsTotal and PairsRFD count the Burst-Break pairs attributed to
	// this path and those matching the signature.
	PairsTotal, PairsRFD int
	// RDeltas holds, for each matching pair, the re-advertisement delta
	// measured from the Burst end (the Figure 13 quantity).
	RDeltas []time.Duration
}

// TomographyPath returns the ASes usable as tomography unknowns: the full
// path minus the origin (a beacon never receives — and so can never damp —
// its own prefix).
func (m Measurement) TomographyPath() []bgp.ASN {
	if len(m.Path) == 0 {
		return nil
	}
	return m.Path[:len(m.Path)-1]
}

// Key returns a stable identity for the measurement.
func (m Measurement) Key() string {
	return fmt.Sprintf("%s|%s|%s", m.VP.Project, m.Prefix, bgp.PathKey(m.Path))
}

// pathAgg accumulates per-pair evidence for one (vp, path).
type pathAgg struct {
	m Measurement
}

// LabelPaths analyses collector entries against the beacon schedules and
// returns one Measurement per (vantage point, prefix, cleaned path)
// actually observed. Anchor schedules are skipped: they are the propagation
// control, not an RFD probe.
func LabelPaths(entries []collector.Entry, schedules []beacon.Schedule, cfg Config) []Measurement {
	return LabelPathsContext(context.Background(), entries, schedules, cfg)
}

// LabelPathsContext is LabelPaths under a context: when ctx carries a
// trace (obs.ContextWithSpan), the labeling stage records a "label" span
// with entry/path counts into it. Labeling itself never blocks, so the
// context is an observability position, not a cancellation point.
func LabelPathsContext(ctx context.Context, entries []collector.Entry, schedules []beacon.Schedule, cfg Config) []Measurement {
	cfg = cfg.withDefaults()
	span := cfg.Obs.StartSpan("label")
	tspan, _ := obs.StartTraceSpan(ctx, "label")

	// Index entries by (prefix, vp).
	type feedKey struct {
		prefix bgp.Prefix
		vp     collector.VantagePoint
	}
	feeds := make(map[feedKey][]collector.Entry)
	for _, e := range entries {
		for _, p := range e.Update.NLRI {
			feeds[feedKey{p, e.VP}] = append(feeds[feedKey{p, e.VP}], e)
		}
		for _, p := range e.Update.Withdrawn {
			feeds[feedKey{p, e.VP}] = append(feeds[feedKey{p, e.VP}], e)
		}
	}
	for k := range feeds {
		es := feeds[k]
		sort.SliceStable(es, func(i, j int) bool { return es[i].Exported.Before(es[j].Exported) })
		feeds[k] = es
	}

	var out []Measurement
	var keys []feedKey
	for k := range feeds {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.prefix != b.prefix {
			return a.prefix.String() < b.prefix.String()
		}
		if a.vp.AS != b.vp.AS {
			return a.vp.AS < b.vp.AS
		}
		return a.vp.Project < b.vp.Project
	})

	for _, sched := range schedules {
		if sched.IsAnchor() {
			continue
		}
		for _, k := range keys {
			if k.prefix != sched.Prefix {
				continue
			}
			ms := labelFeed(feeds[k], sched, k.vp, cfg)
			out = append(out, ms...)
		}
	}
	if cfg.Obs != nil {
		rfdPaths, pairs := 0, 0
		for _, m := range out {
			pairs += m.PairsTotal
			if m.RFD {
				rfdPaths++
			}
		}
		cfg.Obs.Counter(obs.MetricLabelPaths).Add(uint64(len(out)))
		cfg.Obs.Counter(obs.MetricLabelRFDPaths).Add(uint64(rfdPaths))
		cfg.Obs.Counter(obs.MetricLabelPairs).Add(uint64(pairs))
		span.End()
		cfg.Obs.Log(obs.LevelInfo, "labeling done",
			"entries", len(entries), "paths", len(out), "rfd_paths", rfdPaths, "pairs", pairs)
	}
	tspan.SetAttr("entries", len(entries))
	tspan.SetAttr("paths", len(out))
	tspan.End()
	return out
}

// labelFeed classifies every Burst-Break pair of one vantage point's view
// of one beacon prefix, grouping evidence per observed path.
func labelFeed(feed []collector.Entry, sched beacon.Schedule, vp collector.VantagePoint, cfg Config) []Measurement {
	aggs := make(map[string]*pathAgg)
	var order []string

	for pair := 0; pair < sched.Pairs; pair++ {
		burstStart, burstEnd, breakEnd := sched.PairWindow(pair)
		lastBurstCutoff := burstEnd.Add(cfg.PropagationAllowance)

		// Entries belonging to this pair window.
		var pairEntries []collector.Entry
		for _, e := range feed {
			if !e.Exported.Before(burstStart) && e.Exported.Before(breakEnd) {
				pairEntries = append(pairEntries, e)
			}
		}
		if len(pairEntries) == 0 {
			continue // no visibility this pair (session reset etc.)
		}

		// The path for this pair: cleaned path of the last announcement.
		var path []bgp.ASN
		for i := len(pairEntries) - 1; i >= 0; i-- {
			if !pairEntries[i].Update.IsWithdrawalOnly() {
				p := pairEntries[i].Update.ASPath.Clean()
				if !pairEntries[i].Update.ASPath.HasLoop() {
					path = p
				}
				break
			}
		}
		if path == nil {
			continue // nothing usable (only withdrawals, or looped path)
		}

		// Split into Burst-attributed and Break-observed updates.
		var lastBurst *collector.Entry
		var readv *collector.Entry
		for i := range pairEntries {
			e := &pairEntries[i]
			if e.Exported.Before(lastBurstCutoff) {
				lastBurst = e
				continue
			}
			if !e.Update.IsWithdrawalOnly() && readv == nil {
				readv = e
			}
		}

		isRFD := false
		var rdelta time.Duration
		if readv != nil {
			ref := burstStart
			if lastBurst != nil {
				ref = lastBurst.Exported
			}
			if readv.Exported.Sub(ref) >= cfg.MinRDelta {
				isRFD = true
				rdelta = readv.Exported.Sub(burstEnd)
			}
		}

		key := bgp.PathKey(path)
		agg := aggs[key]
		if agg == nil {
			agg = &pathAgg{m: Measurement{
				VP:     vp,
				Prefix: sched.Prefix,
				Site:   sched.Site,
				Path:   path,
			}}
			aggs[key] = agg
			order = append(order, key)
		}
		agg.m.PairsTotal++
		if isRFD {
			agg.m.PairsRFD++
			agg.m.RDeltas = append(agg.m.RDeltas, rdelta)
		}
	}

	var out []Measurement
	for _, key := range order {
		m := aggs[key].m
		m.RFD = float64(m.PairsRFD) >= cfg.RFDShare*float64(m.PairsTotal) && m.PairsTotal > 0 && m.PairsRFD > 0
		out = append(out, m)
	}
	return out
}

// PropagationSample is one anchor-prefix propagation observation: how long
// a beacon event took to appear in a vantage point's exported feed.
type PropagationSample struct {
	VP    collector.VantagePoint
	Delta time.Duration
}

// PropagationDeltas extracts Figure-8 style propagation measurements from
// anchor prefixes: for every anchor announcement, the delta between the
// beacon event time (decoded from the aggregator attribute) and the
// export timestamp of its first appearance at each vantage point.
func PropagationDeltas(entries []collector.Entry, schedules []beacon.Schedule) []PropagationSample {
	anchors := make(map[bgp.Prefix]bool)
	for _, s := range schedules {
		if s.IsAnchor() {
			anchors[s.Prefix] = true
		}
	}
	type seenKey struct {
		vp     collector.VantagePoint
		prefix bgp.Prefix
		ts     uint32
	}
	seen := make(map[seenKey]bool)
	var out []PropagationSample
	for _, e := range entries {
		if e.Update.IsWithdrawalOnly() || e.Update.Aggregator == nil {
			continue
		}
		for _, p := range e.Update.NLRI {
			if !anchors[p] {
				continue
			}
			k := seenKey{e.VP, p, e.Update.Aggregator.ID}
			if seen[k] {
				continue // only the first arrival counts
			}
			seen[k] = true
			sent := beacon.DecodeTimestamp(e.Update.Aggregator.ID)
			out = append(out, PropagationSample{VP: e.VP, Delta: e.Exported.Sub(sent)})
		}
	}
	return out
}
