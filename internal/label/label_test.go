package label

import (
	"bytes"
	"testing"
	"time"

	"because/internal/beacon"
	"because/internal/bgp"
	"because/internal/collector"
	"because/internal/netsim"
	"because/internal/rfd"
	"because/internal/router"
	"because/internal/stats"
	"because/internal/topology"
)

var (
	t0     = time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	pfx    = bgp.MustPrefix("10.1.1.0/24")
	anchor = bgp.MustPrefix("10.1.0.0/24")
	vpRIS  = collector.VantagePoint{AS: 1, Project: collector.RIS}
)

func testSchedule(pairs int) beacon.Schedule {
	return beacon.Schedule{
		Site:           3,
		Prefix:         pfx,
		UpdateInterval: time.Minute,
		BurstLen:       30 * time.Minute,
		BreakLen:       90 * time.Minute,
		Pairs:          pairs,
		Start:          t0,
	}
}

// announceAt builds a synthetic collector entry.
func announceAt(at time.Time, path ...bgp.ASN) collector.Entry {
	return collector.Entry{
		VP:       vpRIS,
		Received: at,
		Exported: at,
		Update: &bgp.Update{
			ASPath:     bgp.NewPath(path...),
			NLRI:       []bgp.Prefix{pfx},
			Aggregator: &bgp.Aggregator{AS: path[len(path)-1], ID: beacon.EncodeTimestamp(at)},
		},
	}
}

func withdrawAt(at time.Time) collector.Entry {
	return collector.Entry{
		VP:       vpRIS,
		Received: at,
		Exported: at,
		Update:   &bgp.Update{Withdrawn: []bgp.Prefix{pfx}},
	}
}

// burstTracking emits announce/withdraw pairs that track the burst closely
// (a non-RFD feed) for pair i of sched.
func burstTracking(sched beacon.Schedule, pair int) []collector.Entry {
	start, end, _ := sched.PairWindow(pair)
	var out []collector.Entry
	for at := start; !at.After(end); at = at.Add(2 * sched.UpdateInterval) {
		out = append(out, withdrawAt(at.Add(10*time.Second)))
		out = append(out, announceAt(at.Add(sched.UpdateInterval).Add(10*time.Second), 1, 2, 3))
	}
	return out
}

// burstDamped emits a damped pattern: a few updates early in the burst,
// silence, then a re-advertisement rdelta after the burst end.
func burstDamped(sched beacon.Schedule, pair int, rdelta time.Duration) []collector.Entry {
	start, end, _ := sched.PairWindow(pair)
	return []collector.Entry{
		withdrawAt(start.Add(10 * time.Second)),
		announceAt(start.Add(sched.UpdateInterval).Add(10*time.Second), 1, 2, 3),
		withdrawAt(start.Add(2 * sched.UpdateInterval).Add(10 * time.Second)),
		announceAt(end.Add(rdelta), 1, 2, 3),
	}
}

func TestNonRFDFeed(t *testing.T) {
	sched := testSchedule(3)
	var entries []collector.Entry
	for p := 0; p < 3; p++ {
		entries = append(entries, burstTracking(sched, p)...)
	}
	ms := LabelPaths(entries, []beacon.Schedule{sched}, Config{})
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
	m := ms[0]
	if m.RFD {
		t.Error("tracking feed labeled RFD")
	}
	if m.PairsTotal != 3 || m.PairsRFD != 0 {
		t.Errorf("pairs = %d/%d", m.PairsRFD, m.PairsTotal)
	}
	if bgp.PathKey(m.Path) != "1 2 3" {
		t.Errorf("path = %v", m.Path)
	}
}

func TestRFDFeed(t *testing.T) {
	sched := testSchedule(3)
	var entries []collector.Entry
	for p := 0; p < 3; p++ {
		entries = append(entries, burstDamped(sched, p, 25*time.Minute)...)
	}
	ms := LabelPaths(entries, []beacon.Schedule{sched}, Config{})
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
	m := ms[0]
	if !m.RFD {
		t.Fatalf("damped feed not labeled RFD: %+v", m)
	}
	if m.PairsRFD != 3 {
		t.Errorf("pairsRFD = %d", m.PairsRFD)
	}
	if len(m.RDeltas) != 3 {
		t.Fatalf("rdeltas = %v", m.RDeltas)
	}
	for _, d := range m.RDeltas {
		if d != 25*time.Minute {
			t.Errorf("rdelta = %v, want 25m", d)
		}
	}
}

func TestNinetyPercentRule(t *testing.T) {
	sched := testSchedule(10)
	build := func(rfdPairs int) []collector.Entry {
		var entries []collector.Entry
		for p := 0; p < 10; p++ {
			if p < rfdPairs {
				entries = append(entries, burstDamped(sched, p, 20*time.Minute)...)
			} else {
				entries = append(entries, burstTracking(sched, p)...)
			}
		}
		return entries
	}
	// 8/10 matching: below the 90% bar.
	ms := LabelPaths(build(8), []beacon.Schedule{sched}, Config{})
	if len(ms) != 1 || ms[0].RFD {
		t.Errorf("8/10 labeled RFD: %+v", ms)
	}
	// 9/10 matching: at the bar.
	ms = LabelPaths(build(9), []beacon.Schedule{sched}, Config{})
	if len(ms) != 1 || !ms[0].RFD {
		t.Errorf("9/10 not labeled RFD: %+v", ms)
	}
}

func TestShortReadvertisementIsNotRFD(t *testing.T) {
	// A re-announcement 3 minutes after burst end (< MinRDelta relative to
	// the last burst update) must not match: that is MRAI/propagation.
	sched := testSchedule(2)
	var entries []collector.Entry
	for p := 0; p < 2; p++ {
		start, end, _ := sched.PairWindow(p)
		entries = append(entries,
			withdrawAt(start.Add(10*time.Second)),
			announceAt(end.Add(30*time.Second), 1, 2, 3),               // last burst update, slightly delayed
			announceAt(end.Add(3*time.Minute+30*time.Second), 1, 2, 3), // 3 min later
		)
	}
	ms := LabelPaths(entries, []beacon.Schedule{sched}, Config{})
	if len(ms) != 1 || ms[0].RFD {
		t.Errorf("short gap labeled RFD: %+v", ms)
	}
}

func TestEmptyPairsAreSkipped(t *testing.T) {
	sched := testSchedule(4)
	// Evidence only in pairs 0 and 1 (session reset afterwards).
	var entries []collector.Entry
	entries = append(entries, burstDamped(sched, 0, 20*time.Minute)...)
	entries = append(entries, burstDamped(sched, 1, 20*time.Minute)...)
	ms := LabelPaths(entries, []beacon.Schedule{sched}, Config{})
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
	if ms[0].PairsTotal != 2 {
		t.Errorf("pairs total = %d, want 2 (empty pairs skipped)", ms[0].PairsTotal)
	}
	if !ms[0].RFD {
		t.Error("2/2 matching pairs should label RFD")
	}
}

func TestPrependingCleaned(t *testing.T) {
	sched := testSchedule(1)
	start, _, _ := sched.PairWindow(0)
	entries := []collector.Entry{
		announceAt(start.Add(time.Minute), 1, 2, 2, 2, 3),
	}
	ms := LabelPaths(entries, []beacon.Schedule{sched}, Config{})
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
	if bgp.PathKey(ms[0].Path) != "1 2 3" {
		t.Errorf("prepending survived: %v", ms[0].Path)
	}
}

func TestTomographyPathDropsOrigin(t *testing.T) {
	m := Measurement{Path: []bgp.ASN{1, 2, 3}}
	got := m.TomographyPath()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("TomographyPath = %v", got)
	}
	if (Measurement{}).TomographyPath() != nil {
		t.Error("empty path should give nil")
	}
}

func TestAnchorSchedulesSkipped(t *testing.T) {
	anchorSched := beacon.Schedule{
		Site: 3, Prefix: anchor, BurstLen: 2 * time.Hour, BreakLen: 2 * time.Hour,
		Pairs: 1, Start: t0,
	}
	entries := []collector.Entry{{
		VP: vpRIS, Received: t0, Exported: t0,
		Update: &bgp.Update{ASPath: bgp.NewPath(1, 2, 3), NLRI: []bgp.Prefix{anchor}},
	}}
	ms := LabelPaths(entries, []beacon.Schedule{anchorSched}, Config{})
	if len(ms) != 0 {
		t.Errorf("anchor produced measurements: %v", ms)
	}
}

func TestPropagationDeltas(t *testing.T) {
	anchorSched := beacon.Schedule{
		Site: 3, Prefix: anchor, BurstLen: 2 * time.Hour, BreakLen: 2 * time.Hour,
		Pairs: 1, Start: t0,
	}
	sent := t0
	first := collector.Entry{
		VP: vpRIS, Received: sent.Add(20 * time.Second), Exported: sent.Add(45 * time.Second),
		Update: &bgp.Update{
			ASPath:     bgp.NewPath(1, 2, 3),
			NLRI:       []bgp.Prefix{anchor},
			Aggregator: &bgp.Aggregator{AS: 3, ID: beacon.EncodeTimestamp(sent)},
		},
	}
	dup := first
	dup.Exported = sent.Add(90 * time.Second) // duplicate later: ignored
	samples := PropagationDeltas([]collector.Entry{first, dup}, []beacon.Schedule{anchorSched})
	if len(samples) != 1 {
		t.Fatalf("samples = %d", len(samples))
	}
	if samples[0].Delta != 45*time.Second {
		t.Errorf("delta = %v", samples[0].Delta)
	}
}

// TestEndToEndWithSimulator runs the full pipeline: beacons over a network
// with one damping AS, collection, MRT, labeling.
func TestEndToEndWithSimulator(t *testing.T) {
	// Topology: VP at AS1 (tier1), damper AS2 between 1 and origin 3;
	// second origin 5 behind non-damping AS4 for the control path.
	g := topology.NewGraph()
	for asn, tier := range map[bgp.ASN]topology.Tier{
		1: topology.TierOne, 2: topology.TierTransit, 3: topology.TierStub,
		4: topology.TierTransit, 5: topology.TierStub,
	} {
		if err := g.AddAS(asn, tier); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []struct{ a, b bgp.ASN }{{1, 2}, {2, 3}, {1, 4}, {4, 5}} {
		if err := g.AddLink(l.a, l.b, topology.RelCustomer); err != nil {
			t.Fatal(err)
		}
	}
	eng := netsim.NewEngine(t0.Add(-time.Hour))
	opts := router.Options{
		LinkDelay: func(a, b bgp.ASN, rng *stats.RNG) time.Duration { return 50 * time.Millisecond },
		MRAI:      func(asn bgp.ASN, rng *stats.RNG) time.Duration { return 0 },
		RFD: func(asn bgp.ASN) *router.RFDPolicy {
			if asn == 2 {
				return &router.RFDPolicy{Params: rfd.Cisco}
			}
			return nil
		},
	}
	net := router.New(eng, g, opts, stats.NewRNG(1))
	col := collector.New(stats.NewRNG(2))
	if err := col.Attach(net, []collector.VantagePoint{vpRIS}); err != nil {
		t.Fatal(err)
	}

	schedDamped := beacon.Schedule{
		Site: 3, Prefix: bgp.MustPrefix("10.1.1.0/24"), UpdateInterval: time.Minute,
		BurstLen: 90 * time.Minute, BreakLen: 3 * time.Hour, Pairs: 2, Start: t0,
	}
	schedClean := beacon.Schedule{
		Site: 5, Prefix: bgp.MustPrefix("10.2.1.0/24"), UpdateInterval: time.Minute,
		BurstLen: 90 * time.Minute, BreakLen: 3 * time.Hour, Pairs: 2, Start: t0,
	}
	for _, s := range []beacon.Schedule{schedDamped, schedClean} {
		evs, err := s.Events()
		if err != nil {
			t.Fatal(err)
		}
		if err := beacon.Drive(eng, net, evs); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()

	ms := LabelPaths(col.Entries(), []beacon.Schedule{schedDamped, schedClean}, Config{})
	var damped, clean *Measurement
	for i := range ms {
		switch ms[i].Site {
		case 3:
			damped = &ms[i]
		case 5:
			clean = &ms[i]
		}
	}
	if damped == nil || clean == nil {
		t.Fatalf("missing measurements: %+v", ms)
	}
	if !damped.RFD {
		t.Errorf("path through damper not labeled RFD: %+v", damped)
	}
	if clean.RFD {
		t.Errorf("clean path labeled RFD: %+v", clean)
	}
	if bgp.PathKey(damped.Path) != "1 2 3" {
		t.Errorf("damped path = %v", damped.Path)
	}
	for _, d := range damped.RDeltas {
		if d < 5*time.Minute || d > 65*time.Minute {
			t.Errorf("implausible rdelta %v", d)
		}
	}
}

func TestMeasurementJSONRoundTrip(t *testing.T) {
	ms := []Measurement{
		{
			VP:         vpRIS,
			Prefix:     pfx,
			Site:       3,
			Path:       []bgp.ASN{1, 2, 3},
			RFD:        true,
			PairsTotal: 4,
			PairsRFD:   4,
			RDeltas:    []time.Duration{10 * time.Minute, 59 * time.Minute},
		},
		{
			VP:         collector.VantagePoint{AS: 9, Project: collector.Isolario},
			Prefix:     anchor,
			Site:       5,
			Path:       []bgp.ASN{9, 4, 5},
			RFD:        false,
			PairsTotal: 4,
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ms); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip count = %d", len(back))
	}
	for i := range back {
		if back[i].RFD != ms[i].RFD || back[i].Site != ms[i].Site ||
			back[i].VP != ms[i].VP || back[i].Prefix != ms[i].Prefix ||
			back[i].PairsTotal != ms[i].PairsTotal {
			t.Errorf("measurement %d = %+v, want %+v", i, back[i], ms[i])
		}
		if bgp.PathKey(back[i].TomographyPath()) != bgp.PathKey(ms[i].TomographyPath()) {
			t.Errorf("tomography path %d = %v", i, back[i].TomographyPath())
		}
	}
	if len(back[0].RDeltas) != 2 || back[0].RDeltas[1] != 59*time.Minute {
		t.Errorf("rdeltas = %v", back[0].RDeltas)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`[{"path":[],"positive":true}]`))); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`[{"path":[1],"prefix":"nonsense"}]`))); err == nil {
		t.Error("bad prefix accepted")
	}
}
