package netsim

import (
	"testing"
	"time"
)

var t0 = time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine(t0)
	var order []int
	e.At(t0.Add(3*time.Second), func() { order = append(order, 3) })
	e.At(t0.Add(1*time.Second), func() { order = append(order, 1) })
	e.At(t0.Add(2*time.Second), func() { order = append(order, 2) })
	end := e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if !end.Equal(t0.Add(3 * time.Second)) {
		t.Errorf("end time = %v", end)
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	e := NewEngine(t0)
	var order []int
	at := t0.Add(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		e.At(at, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(t0)
	var times []time.Time
	e.After(time.Second, func() {
		times = append(times, e.Now())
		e.After(2*time.Second, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 {
		t.Fatalf("ran %d events", len(times))
	}
	if !times[1].Equal(t0.Add(3 * time.Second)) {
		t.Errorf("nested event at %v", times[1])
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(t0)
	e.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("past scheduling did not panic")
			}
		}()
		e.At(t0, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine(t0)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-time.Second, func() {})
}

func TestStop(t *testing.T) {
	e := NewEngine(t0)
	ran := 0
	for i := 1; i <= 10; i++ {
		e.At(t0.Add(time.Duration(i)*time.Second), func() {
			ran++
			if ran == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("ran %d events after Stop at 3", ran)
	}
	if e.Pending() != 7 {
		t.Errorf("pending = %d", e.Pending())
	}
	// Run resumes after a Stop.
	e.Run()
	if ran != 10 {
		t.Errorf("resume ran %d total", ran)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(t0)
	ran := 0
	for i := 1; i <= 10; i++ {
		e.At(t0.Add(time.Duration(i)*time.Minute), func() { ran++ })
	}
	e.RunUntil(t0.Add(5 * time.Minute))
	if ran != 5 {
		t.Fatalf("ran %d events, want 5", ran)
	}
	if !e.Now().Equal(t0.Add(5 * time.Minute)) {
		t.Errorf("clock = %v", e.Now())
	}
	// Deadline with no events still advances the clock.
	e.RunUntil(t0.Add(5*time.Minute + 30*time.Second))
	if !e.Now().Equal(t0.Add(5*time.Minute + 30*time.Second)) {
		t.Errorf("clock = %v", e.Now())
	}
	e.Run()
	if ran != 10 {
		t.Errorf("total ran = %d", ran)
	}
}

func TestProcessedCounter(t *testing.T) {
	e := NewEngine(t0)
	for i := 0; i < 5; i++ {
		e.After(time.Duration(i)*time.Second, func() {})
	}
	e.Run()
	if e.Processed() != 5 {
		t.Errorf("Processed = %d", e.Processed())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	trace := func() []int {
		e := NewEngine(t0)
		var out []int
		var step func(n int)
		step = func(n int) {
			out = append(out, n)
			if n < 20 {
				e.After(time.Duration(n%3+1)*time.Second, func() { step(n + 1) })
			}
		}
		e.After(0, func() { step(0) })
		e.Run()
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatal("non-deterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}
