// Package netsim is a deterministic discrete-event simulation kernel. The
// BGP router network, the beacon schedulers and the collectors all run on
// one Engine: components schedule callbacks at virtual times and the engine
// executes them in time order with a deterministic tie-break, so an entire
// measurement campaign (months of virtual time) runs in milliseconds and is
// exactly reproducible.
package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Time
	seq uint64 // FIFO tie-break for equal timestamps
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is the simulation clock and event loop. The zero value is not
// usable; construct with NewEngine. Engine is single-threaded by design:
// all model code runs inside event callbacks on the calling goroutine,
// which is what makes runs deterministic without locks.
type Engine struct {
	now     time.Time
	queue   eventQueue
	seq     uint64
	stopped bool
	events  uint64
}

// NewEngine returns an engine whose clock starts at start.
func NewEngine(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Processed returns the number of events executed so far (for metrics and
// runaway detection in tests).
func (e *Engine) Processed() uint64 { return e.events }

// Pending returns the number of scheduled, not-yet-run events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past (before Now) panics: that is always a model bug, and silently
// reordering events would destroy causality.
func (e *Engine) At(at time.Time, fn func()) {
	if at.Before(e.now) {
		panic(fmt.Sprintf("netsim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	e.At(e.now.Add(d), fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called. It
// returns the virtual time of the last event executed.
func (e *Engine) Run() time.Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.events++
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, advances the clock
// to exactly deadline, and leaves later events queued.
func (e *Engine) RunUntil(deadline time.Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at.After(deadline) {
			break
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.events++
		ev.fn()
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
}
