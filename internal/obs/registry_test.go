package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "k", "v")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c_total", "k", "v") != c {
		t.Error("same name+labels returned a different counter")
	}
	if r.Counter("c_total", "k", "other") == c {
		t.Error("different labels shared a counter")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}

	h := r.Histogram("h_seconds", []float64{1, 10}, "stage", "x")
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Errorf("histogram count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("gauge re-registration of a counter name did not panic")
		}
	}()
	r.Gauge("m")
}

// TestConcurrentRegistry exercises handle creation and increments from many
// goroutines; run with -race.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared_total").Inc()
				r.Counter("per_worker_total", "worker", ChainLabel(w)).Inc()
				r.Gauge("g", "worker", ChainLabel(w)).Set(float64(i))
				r.Histogram("h", []float64{10, 100}, "worker", ChainLabel(w)).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*iters {
		t.Errorf("shared counter = %d, want %d", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		if got := r.Counter("per_worker_total", "worker", ChainLabel(w)).Value(); got != iters {
			t.Errorf("worker %d counter = %d, want %d", w, got, iters)
		}
		if got := r.Histogram("h", []float64{10, 100}, "worker", ChainLabel(w)).Count(); got != iters {
			t.Errorf("worker %d histogram count = %d, want %d", w, got, iters)
		}
	}
}

func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricSweeps, "method", "mh", "chain", "0").Add(1875)
	r.Counter(MetricSweeps, "chain", "1", "method", "mh").Add(1875) // label order must not matter
	r.Gauge(MetricAcceptance, "method", "mh", "chain", "0").Set(0.25)
	h := r.Histogram(MetricStageSeconds, []float64{0.1, 1}, "stage", "mh")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE because_sampler_acceptance_rate gauge
because_sampler_acceptance_rate{chain="0",method="mh"} 0.25
# TYPE because_sampler_sweeps_total counter
because_sampler_sweeps_total{chain="0",method="mh"} 1875
because_sampler_sweeps_total{chain="1",method="mh"} 1875
# TYPE because_stage_duration_seconds histogram
because_stage_duration_seconds_bucket{stage="mh",le="0.1"} 1
because_stage_duration_seconds_bucket{stage="mh",le="1"} 2
because_stage_duration_seconds_bucket{stage="mh",le="+Inf"} 3
because_stage_duration_seconds_sum{stage="mh"} 30.55
because_stage_duration_seconds_count{stage="mh"} 3
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "a", "b").Add(3)
	r.Gauge("g").Set(1.25)
	r.Histogram("h", []float64{1}, "s", "x").Observe(0.5)
	snap := r.Snapshot()
	for key, want := range map[string]float64{
		`c_total{a="b"}`: 3,
		"g":              1.25,
		`h_sum{s="x"}`:   0.5,
		`h_count{s="x"}`: 1,
	} {
		if got := snap[key]; got != want {
			t.Errorf("snapshot[%s] = %g, want %g", key, got, want)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", nil).Observe(1)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}

	var o *Observer
	o.Log(LevelError, "dropped")
	o.Counter("x").Inc()
	o.Gauge("x").Add(1)
	o.StartSpan("x").End()
	if o.Enabled(LevelError) {
		t.Error("nil observer enabled")
	}
	if v := o.Gauge("x").Value(); v != 0 {
		t.Errorf("nil gauge value = %g", v)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "k", `a"b\c`).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c{k="a\"b\\c"} 1`) {
		t.Errorf("escaping wrong: %s", b.String())
	}
}

func TestGaugeSpecialValues(t *testing.T) {
	r := NewRegistry()
	r.Gauge("inf").Set(math.Inf(1))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "inf +Inf") {
		t.Errorf("infinity rendering wrong: %s", b.String())
	}
}
