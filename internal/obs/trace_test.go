package obs

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestNilTraceNoOps: the whole trace API must be callable through nil
// receivers and trace-free contexts — untraced requests pay pointer
// checks, nothing else.
func TestNilTraceNoOps(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Root() != nil || tr.SpanCount() != 0 || tr.Export() != nil {
		t.Error("nil Trace methods must be no-ops")
	}
	var s *TraceSpan
	if s.ID() != "" || s.Name() != "" {
		t.Error("nil TraceSpan identity must be empty")
	}
	s.SetAttr("k", 1) // must not panic
	if s.StartChild("x") != nil {
		t.Error("nil span StartChild must return nil")
	}
	if s.End() != 0 {
		t.Error("nil span End must return 0")
	}
	var e *TraceExport
	if e.Canonical() != nil {
		t.Error("nil export Canonical must return nil")
	}

	ctx := context.Background()
	if SpanFromContext(ctx) != nil || TraceFromContext(ctx) != nil {
		t.Error("fresh context must carry no span")
	}
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Error("ContextWithSpan(nil span) must return ctx unchanged")
	}
	span, ctx2 := StartTraceSpan(ctx, "stage")
	if span != nil || ctx2 != ctx {
		t.Error("StartTraceSpan without a trace must be a no-op")
	}
	span.SetAttr("k", "v") // nil span from a trace-free ctx: still safe
	span.End()
}

// TestTraceIDsDeterministic: IDs are pure functions of identity and tree
// position — two traces built the same way agree bit for bit.
func TestTraceIDsDeterministic(t *testing.T) {
	build := func() *TraceExport {
		tr := NewTrace("job", "request-hash-123")
		root := tr.Root()
		a := root.StartChild("dataset")
		a.End()
		for i := 0; i < 3; i++ {
			c := root.StartChild("mh")
			c.SetAttr("chain", i)
			c.End()
		}
		root.End()
		return tr.Export()
	}
	x, y := build().Canonical(), build().Canonical()
	if !reflect.DeepEqual(x, y) {
		t.Errorf("canonical exports differ:\n%+v\n%+v", x, y)
	}
	if x.TraceID == "" || x.Root.SpanID == "" {
		t.Error("IDs must be non-empty")
	}
	// A different identity must move the whole ID space.
	other := NewTrace("job", "request-hash-456")
	if other.ID() == x.TraceID {
		t.Error("different identities share a trace ID")
	}
	if other.Root().ID() == x.Root.SpanID {
		t.Error("different identities share a root span ID")
	}
	// Same-named siblings get distinct ordinal-derived IDs.
	kids := x.Root.Children
	if len(kids) != 4 {
		t.Fatalf("children = %d, want 4", len(kids))
	}
	if kids[1].SpanID == kids[2].SpanID {
		t.Error("same-named siblings share a span ID")
	}
}

// TestTraceContextCarriage: StartTraceSpan nests spans along the context
// chain.
func TestTraceContextCarriage(t *testing.T) {
	tr := NewTrace("job", "id")
	ctx := ContextWithSpan(context.Background(), tr.Root())
	if TraceFromContext(ctx) != tr {
		t.Fatal("TraceFromContext lost the trace")
	}
	infer, ctx2 := StartTraceSpan(ctx, "infer")
	if infer == nil || SpanFromContext(ctx2) != infer {
		t.Fatal("StartTraceSpan did not reposition the context")
	}
	leaf, _ := StartTraceSpan(ctx2, "summarize")
	leaf.End()
	infer.End()
	tr.Root().End()

	e := tr.Export()
	if e.Spans != 3 || tr.SpanCount() != 3 {
		t.Errorf("span count = %d / %d, want 3", e.Spans, tr.SpanCount())
	}
	if len(e.Root.Children) != 1 || e.Root.Children[0].Name != "infer" {
		t.Fatalf("root children = %+v", e.Root.Children)
	}
	if len(e.Root.Children[0].Children) != 1 || e.Root.Children[0].Children[0].Name != "summarize" {
		t.Fatalf("infer children = %+v", e.Root.Children[0].Children)
	}
}

// TestTraceAttrs: last write per key wins, insertion order preserved,
// attrs survive End.
func TestTraceAttrs(t *testing.T) {
	tr := NewTrace("job", "id")
	s := tr.Root().StartChild("mh")
	s.SetAttr("chain", 0)
	s.SetAttr("sweeps", 100)
	s.End()
	s.SetAttr("acceptance", 0.25) // post-End attach, the fan-out join pattern
	s.SetAttr("chain", 1)         // overwrite keeps position

	e := tr.Export()
	got := e.Root.Children[0].Attrs
	want := []TraceAttr{{Key: "chain", Value: 1}, {Key: "sweeps", Value: 100}, {Key: "acceptance", Value: 0.25}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("attrs = %+v, want %+v", got, want)
	}
}

// TestTraceExportJSON: the export marshals to the documented field names.
func TestTraceExportJSON(t *testing.T) {
	tr := NewTrace("job", "id")
	tr.Root().StartChild("infer").End()
	tr.Root().End()
	raw, err := json.Marshal(tr.Export())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"trace_id"`, `"span_count":2`, `"span_id"`, `"name":"infer"`, `"start_us"`, `"duration_us"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("export JSON missing %s: %s", want, raw)
		}
	}
}

// TestTraceConcurrentSpans: concurrent children on one parent are safe
// under the race detector (creation-order determinism is the caller's
// contract, exercised by the core reproducibility harness).
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("job", "id")
	spans := make([]*TraceSpan, 8)
	for i := range spans {
		spans[i] = tr.Root().StartChild("chain") // pre-created, fixed order
	}
	var wg sync.WaitGroup
	for i := range spans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spans[i].End()
		}(i)
	}
	wg.Wait()
	for i := range spans {
		spans[i].SetAttr("chain", i)
	}
	if got := tr.SpanCount(); got != 9 {
		t.Errorf("span count = %d, want 9", got)
	}
}
