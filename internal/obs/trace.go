package obs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// Request-scoped tracing.
//
// A Trace is a tree of named spans covering one inference request: the
// job envelope, the dataset build, every sampler chain, summarisation and
// pinpointing. It complements the process-wide Registry (aggregates) with
// a per-request view — where did THIS run's time go — exportable as one
// JSON document from becaused's job API or becausectl's -trace-out.
//
// Determinism contract. Trace and span IDs are pure functions of the
// caller-supplied trace identity and the span's position in the tree
// (parent ID, name, sibling ordinal) — never of the clock, scheduling or
// worker count. Span creation order must itself be deterministic: callers
// that fan spans out across goroutines pre-create them in a fixed order
// before launching (exactly how internal/core pre-splits RNG streams), so
// the exported tree — IDs, names, nesting, attributes — is bit-identical
// at any Config.Workers. Only the start_us/duration_us timings vary; they
// are observability-only wall-clock reads confined to this package.
//
// The nil *Trace and nil *TraceSpan are complete no-ops, like every other
// type in this package: untraced requests pay one pointer check per site.

// Trace is one request-scoped span tree. Construct with NewTrace; the nil
// Trace is a no-op.
type Trace struct {
	mu    sync.Mutex
	id    string     // immutable after NewTrace
	root  *TraceSpan // immutable after NewTrace (span fields are guarded by mu)
	epoch time.Time  // immutable after NewTrace
	spans int        //lint:guard mu
}

// NewTrace starts a trace whose root span carries name. identity is the
// deterministic request identity the trace ID is derived from — becaused
// uses the canonical request hash, becausectl a hash of its input — so
// identical requests always produce identical trace IDs.
func NewTrace(name, identity string) *Trace {
	t := &Trace{
		id: deriveID("trace", name, identity, 0),
		// Observability-only clock read: the epoch anchors span offsets,
		// never any result.
		epoch: time.Now(), //lint:allow determinism
	}
	t.root = &TraceSpan{
		trace: t,
		name:  name,
		id:    deriveID("span", t.id, name, 0),
		start: t.epoch,
	}
	t.spans = 1
	return t
}

// deriveID hashes the components into a 16-hex-digit identifier.
func deriveID(kind, parent, name string, ordinal int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("because-%s\x00%s\x00%s\x00%d", kind, parent, name, ordinal)))
	return hex.EncodeToString(sum[:8])
}

// ID returns the trace identifier ("" for the nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil for the nil trace).
func (t *Trace) Root() *TraceSpan {
	if t == nil {
		return nil
	}
	return t.root
}

// SpanCount returns how many spans the trace holds so far.
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// TraceSpan is one timed, attributed node of a trace. Obtain the root from
// NewTrace and children from StartChild; the nil span is a no-op.
type TraceSpan struct {
	trace    *Trace
	name     string
	id       string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []TraceAttr
	children []*TraceSpan
}

// TraceAttr is one span attribute. Attributes keep insertion order, which
// must itself be deterministic (set them from one goroutine, or after a
// fan-out has been joined).
type TraceAttr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// StartChild opens a child span. The child's ID derives from the parent's
// ID, the name and the ordinal among same-named siblings — scheduling
// never enters. For a deterministic tree, create concurrent siblings in a
// fixed order before fanning out (distinct names per sibling).
func (s *TraceSpan) StartChild(name string) *TraceSpan {
	if s == nil {
		return nil
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	ordinal := 0
	for _, c := range s.children {
		if c.name == name {
			ordinal++
		}
	}
	child := &TraceSpan{
		trace: t,
		name:  name,
		id:    deriveID("span", s.id, name, ordinal),
		// Observability-only clock read: feeds start_us/duration_us.
		start: time.Now(), //lint:allow determinism
	}
	s.children = append(s.children, child)
	t.spans++
	return child
}

// ID returns the span identifier ("" for the nil span).
func (s *TraceSpan) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Name returns the span name ("" for the nil span).
func (s *TraceSpan) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr records a key/value attribute on the span (last write per key
// wins at export; insertion order is preserved). Safe to call after End —
// sampler statistics are typically attached once a fan-out has joined,
// so attribute order stays deterministic.
func (s *TraceSpan) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, TraceAttr{Key: key, Value: value})
}

// End closes the span, fixing its duration. Ending twice keeps the first
// duration; an unended span exports with the duration it has accumulated
// at export time.
func (s *TraceSpan) End() time.Duration {
	if s == nil {
		return 0
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if !s.ended {
		// Observability-only clock read: fixes duration_us.
		s.dur = time.Since(s.start) //lint:allow determinism
		s.ended = true
	}
	return s.dur
}

// TraceExport is the JSON document form of a trace: the trace ID and the
// span tree. Timings are microsecond offsets from the trace epoch; the
// tree shape, span IDs, names and attributes are deterministic per
// request, the timings are not.
type TraceExport struct {
	TraceID string      `json:"trace_id"`
	Spans   int         `json:"span_count"`
	Root    *SpanExport `json:"root"`
}

// SpanExport is one exported span node.
type SpanExport struct {
	SpanID   string        `json:"span_id"`
	Name     string        `json:"name"`
	StartUS  int64         `json:"start_us"`
	DurUS    int64         `json:"duration_us"`
	Attrs    []TraceAttr   `json:"attrs,omitempty"`
	Children []*SpanExport `json:"children,omitempty"`
}

// Export snapshots the trace as an exportable document. Safe to call while
// spans are still being recorded (becaused exports live traces from the
// job-status endpoint); children appear in creation order.
func (t *Trace) Export() *TraceExport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &TraceExport{TraceID: t.id, Spans: t.spans, Root: t.exportSpanLocked(t.root)}
}

// exportSpanLocked renders one span subtree; caller holds the trace lock.
func (t *Trace) exportSpanLocked(s *TraceSpan) *SpanExport {
	if s == nil {
		return nil
	}
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start) //lint:allow determinism — observability-only clock read
	}
	out := &SpanExport{
		SpanID:  s.id,
		Name:    s.name,
		StartUS: s.start.Sub(t.epoch).Microseconds(),
		DurUS:   dur.Microseconds(),
	}
	if len(s.attrs) > 0 {
		out.Attrs = append([]TraceAttr(nil), s.attrs...)
	}
	for _, c := range s.children {
		out.Children = append(out.Children, t.exportSpanLocked(c))
	}
	return out
}

// Canonical strips the scheduling-dependent timings from the export,
// leaving exactly the deterministic surface: IDs, names, nesting and
// attributes. The reproducibility harness compares Canonical forms across
// worker counts.
func (e *TraceExport) Canonical() *TraceExport {
	if e == nil {
		return nil
	}
	return &TraceExport{TraceID: e.TraceID, Spans: e.Spans, Root: e.Root.canonical()}
}

func (s *SpanExport) canonical() *SpanExport {
	if s == nil {
		return nil
	}
	out := &SpanExport{SpanID: s.SpanID, Name: s.Name, Attrs: s.Attrs}
	for _, c := range s.Children {
		out.Children = append(out.Children, c.canonical())
	}
	return out
}

// traceCtxKey carries the current span through a context.
type traceCtxKey struct{}

// ContextWithSpan returns a context carrying span as the current trace
// position; StartTraceSpan and SpanFromContext read it back. A nil span
// returns ctx unchanged.
func ContextWithSpan(ctx context.Context, span *TraceSpan) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, span)
}

// SpanFromContext returns the current span, or nil when ctx carries none.
func SpanFromContext(ctx context.Context) *TraceSpan {
	if ctx == nil {
		return nil
	}
	span, _ := ctx.Value(traceCtxKey{}).(*TraceSpan)
	return span
}

// TraceFromContext returns the trace the current span belongs to, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	if s := SpanFromContext(ctx); s != nil {
		return s.trace
	}
	return nil
}

// StartTraceSpan opens a child of ctx's current span and returns it along
// with a context positioned on the child. When ctx carries no trace the
// span is nil (a no-op) and ctx is returned unchanged — untraced callers
// pay a map lookup, nothing more.
func StartTraceSpan(ctx context.Context, name string) (*TraceSpan, context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	parent := SpanFromContext(ctx)
	if parent == nil {
		return nil, ctx
	}
	child := parent.StartChild(name)
	return child, ContextWithSpan(ctx, child)
}
