package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "ERROR": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("bogus level accepted")
	}
}

func TestTextLogger(t *testing.T) {
	var b strings.Builder
	l := NewTextLogger(&b, LevelInfo)
	l.now = func() time.Time { return time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC) }

	l.Log(LevelDebug, "hidden")
	if b.Len() != 0 {
		t.Errorf("debug leaked below min level: %q", b.String())
	}
	if l.Enabled(LevelDebug) || !l.Enabled(LevelWarn) {
		t.Error("Enabled thresholds wrong")
	}

	l.Log(LevelInfo, "mh chain done", "chain", 0, "acceptance", 0.25, "note", "two words")
	want := `2020-03-01T00:00:00Z info mh chain done chain=0 acceptance=0.25 note="two words"` + "\n"
	if b.String() != want {
		t.Errorf("line = %q, want %q", b.String(), want)
	}

	b.Reset()
	l.Log(LevelWarn, "odd", "dangling")
	if !strings.Contains(b.String(), "!MISSING=dangling") {
		t.Errorf("odd kv not flagged: %q", b.String())
	}
}

func TestNopLogger(t *testing.T) {
	l := Nop()
	if l.Enabled(LevelError) {
		t.Error("nop logger claims enabled")
	}
	l.Log(LevelError, "dropped") // must not panic
}

func TestSpanRecordsDuration(t *testing.T) {
	r := NewRegistry()
	o := New(nil, r)
	sp := o.StartSpan("label")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Errorf("span duration = %v", d)
	}
	h := r.Histogram(MetricStageSeconds, nil, "stage", "label")
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Errorf("stage histogram count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestProgressAcceptanceRate(t *testing.T) {
	if got := (Progress{}).AcceptanceRate(); got != 0 {
		t.Errorf("empty progress rate = %g", got)
	}
	if got := (Progress{Accepted: 1, Proposed: 4}).AcceptanceRate(); got != 0.25 {
		t.Errorf("rate = %g, want 0.25", got)
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricSweeps, "method", "mh", "chain", "0").Add(42)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, `because_sampler_sweeps_total{chain="0",method="mh"} 42`) {
		t.Errorf("/metrics missing series:\n%s", metrics)
	}
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Error("/debug/pprof/ index not mounted")
	}
}
