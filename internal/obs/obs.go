// Package obs is BeCAUSe's dependency-free observability layer: a metrics
// registry with Prometheus text exposition, structured leveled logging, and
// timed spans for pipeline stages. Every type treats its nil value as a
// no-op, so instrumented code pays only a nil check when observability is
// not wired up — library callers that never touch this package lose
// nothing.
//
// The pipeline threads a single *Observer (logger + registry) through the
// measurement stages (campaign, collection, labeling) and the inference
// stages (MH sweeps, HMC trajectories, summarization, pinpointing). The
// CLIs expose the registry over HTTP via Serve and render sampler progress
// from Progress events.
package obs

import (
	"strconv"
	"time"
)

// Observer bundles a logger and a metrics registry — the instrumentation
// context handed through the pipeline. The nil *Observer is a complete
// no-op; every method is nil-safe.
type Observer struct {
	Logger  Logger
	Metrics *Registry
}

// New returns an observer over the given logger (nil → Nop) and registry
// (nil → metrics dropped).
func New(logger Logger, metrics *Registry) *Observer {
	if logger == nil {
		logger = Nop()
	}
	return &Observer{Logger: logger, Metrics: metrics}
}

// Log emits a record through the attached logger, if any.
func (o *Observer) Log(level Level, msg string, kv ...any) {
	if o == nil || o.Logger == nil {
		return
	}
	o.Logger.Log(level, msg, kv...)
}

// Enabled reports whether the attached logger emits at level.
func (o *Observer) Enabled(level Level) bool {
	return o != nil && o.Logger != nil && o.Logger.Enabled(level)
}

// Counter returns the named counter (nil handle when unobserved).
func (o *Observer) Counter(name string, labels ...string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name, labels...)
}

// Gauge returns the named gauge (nil handle when unobserved).
func (o *Observer) Gauge(name string, labels ...string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name, labels...)
}

// Histogram returns the named histogram (nil handle when unobserved).
func (o *Observer) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, buckets, labels...)
}

// Span is a timed pipeline stage. Obtain one from StartSpan; End records
// the elapsed time into the stage-duration histogram and logs at debug.
// The nil span is a no-op.
type Span struct {
	obs   *Observer
	stage string
	start time.Time
}

// StartSpan begins timing a named pipeline stage.
func (o *Observer) StartSpan(stage string) *Span {
	if o == nil {
		return nil
	}
	return &Span{obs: o, stage: stage, start: time.Now()} //lint:allow determinism — observability-only stage timing
}

// End finishes the span and returns its duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start) //lint:allow determinism — observability-only stage timing
	s.obs.Histogram(MetricStageSeconds, nil, "stage", s.stage).Observe(d.Seconds())
	s.obs.Log(LevelDebug, "stage done", "stage", s.stage, "seconds", d.Seconds())
	return d
}

// Progress is one sampler progress event.
type Progress struct {
	// Stage is the sampler ("mh" or "hmc").
	Stage string
	// Chain is the chain index within a multi-chain ensemble.
	Chain int
	// Done and Total count sweeps (MH) or trajectories (HMC), burn-in
	// included.
	Done, Total int
	// Accepted and Proposed are the running Metropolis decision counts.
	Accepted, Proposed int
}

// AcceptanceRate returns Accepted/Proposed (0 before any proposal).
func (p Progress) AcceptanceRate() float64 {
	if p.Proposed == 0 {
		return 0
	}
	return float64(p.Accepted) / float64(p.Proposed)
}

// ProgressFunc receives sampler progress events. Called synchronously from
// the sampling loop: keep it fast.
type ProgressFunc func(Progress)

// ChainLabel renders a chain index as a metric label value.
func ChainLabel(chain int) string { return strconv.Itoa(chain) }
