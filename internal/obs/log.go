package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int8

// Severities, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int8(l))
	}
}

// ParseLevel reads a level name ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
	}
}

// Logger is the minimal structured logging contract: a message plus
// alternating key/value pairs, slog-style. Implementations must be safe for
// concurrent use.
type Logger interface {
	// Log emits one record. kv is alternating key, value, key, value ...
	Log(level Level, msg string, kv ...any)
	// Enabled reports whether records at the level would be emitted, so
	// callers can skip expensive argument construction.
	Enabled(level Level) bool
}

// nopLogger drops everything.
type nopLogger struct{}

func (nopLogger) Log(Level, string, ...any) {}
func (nopLogger) Enabled(Level) bool        { return false }

// Nop returns a logger that drops every record. It is the default wherever
// a Logger is optional, so library callers pay nothing.
func Nop() Logger { return nopLogger{} }

// TextLogger writes one line per record:
//
//	2020-03-01T00:00:00Z info mh chain done chain=0 acceptance=0.23
//
// Keys and values are rendered with %v; strings containing spaces, '=' or
// '"' are quoted. Safe for concurrent use.
type TextLogger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	// now is stubbed in tests.
	now func() time.Time
}

// NewTextLogger returns a TextLogger writing records at or above min to w.
func NewTextLogger(w io.Writer, min Level) *TextLogger {
	return &TextLogger{w: w, min: min, now: time.Now} //lint:allow determinism — log timestamps only
}

// Enabled implements Logger. The nil *TextLogger emits nothing.
func (l *TextLogger) Enabled(level Level) bool { return l != nil && level >= l.min }

// Log implements Logger. The nil *TextLogger drops the record: a typed
// nil stored in a Logger interface slips past interface==nil checks, so
// the methods themselves must be nil-safe like every other obs type.
func (l *TextLogger) Log(level Level, msg string, kv ...any) {
	if l == nil || !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString(l.now().UTC().Format(time.RFC3339))
	b.WriteByte(' ')
	b.WriteString(level.String())
	b.WriteByte(' ')
	b.WriteString(msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprintf("%v", kv[i]))
		b.WriteByte('=')
		b.WriteString(formatValue(kv[i+1]))
	}
	if len(kv)%2 == 1 {
		b.WriteString(" !MISSING=")
		b.WriteString(formatValue(kv[len(kv)-1]))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}

func formatValue(v any) string {
	s := fmt.Sprintf("%v", v)
	if strings.ContainsAny(s, " =\"") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
