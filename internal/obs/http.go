package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a registry over HTTP: GET /metrics serves the Prometheus
// text exposition, and the standard net/http/pprof handlers are mounted
// under /debug/pprof/ for live profiling of long inference runs.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Serve starts listening on addr (":0" picks a free port) and serves the
// registry until Close. The returned server is already accepting.
func Serve(addr string, reg *Registry) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		lis: lis,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	// The accept loop is owned by the http.Server: Close makes Serve
	// return ErrServerClosed, so the join lives behind the stdlib API.
	//lint:allow goleak joined by srv.Close in Server.Close
	go s.srv.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (host:port), useful with ":0". The nil
// server reports an empty address.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// URL returns the server's base URL ("" for the nil server).
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops the listener. Closing the nil server is a no-op.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
