package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical metric names emitted by the pipeline. Centralised so the
// README, the instrumentation sites and the tests agree on spelling.
const (
	// Sampler metrics, labeled method="mh"|"hmc" and chain="0","1",...
	MetricSweeps      = "because_sampler_sweeps_total"
	MetricAcceptance  = "because_sampler_acceptance_rate"
	MetricSweepRate   = "because_sampler_sweeps_per_second"
	MetricDivergences = "because_sampler_divergences_total"

	// Whole-inference metrics.
	MetricInferRuns  = "because_infer_runs_total"
	MetricInferNodes = "because_infer_nodes"
	MetricInferPaths = "because_infer_paths"
	MetricRHatMax    = "because_infer_rhat_max"
	MetricESSMin     = "because_infer_ess_min"

	// Pipeline stage durations, labeled stage="mh"|"hmc"|"summarize"|
	// "pinpoint"|"label"|"campaign".
	MetricStageSeconds = "because_stage_duration_seconds"

	// Worker-pool metrics, labeled pool="infer"|"campaigns"|"experiments"|
	// "archive". Busy is the number of tasks currently executing; Tasks
	// counts completed tasks.
	MetricPoolBusy  = "because_pool_busy_workers"
	MetricPoolTasks = "because_pool_tasks_total"

	// Per-chain sampler wall time, labeled method="mh"|"hmc" — one
	// observation per chain per inference run, so tail latency across an
	// ensemble is visible even when chains run concurrently.
	MetricChainSeconds = "because_chain_duration_seconds"

	// Measurement pipeline, labeled project="ris"|"routeviews"|"isolario".
	MetricCollectorUpdates = "because_collector_updates_total"
	MetricLabelPaths       = "because_label_paths_total"
	MetricLabelRFDPaths    = "because_label_rfd_paths_total"
	MetricLabelPairs       = "because_label_pairs_total"

	// becaused serving metrics. Requests is labeled endpoint="infer"|
	// "healthz" and code="200"|"429"|... ; the gauges track the job queue
	// (InFlight = jobs currently sampling, QueueDepth = admitted jobs
	// waiting for a worker); the cache counters expose the result cache's
	// effectiveness.
	MetricServeRequests    = "because_serve_requests_total"
	MetricServeInFlight    = "because_serve_inflight_jobs"
	MetricServeQueueDepth  = "because_serve_queue_depth"
	MetricServeCacheHits   = "because_serve_cache_hits_total"
	MetricServeCacheMisses = "because_serve_cache_misses_total"
	MetricServeJobSeconds  = "because_serve_job_duration_seconds"
	// Job-API metrics: Jobs counts jobs reaching a terminal state, labeled
	// state="done"|"failed"|"cancelled"; SSEEvents counts progress events
	// actually written to event streams (inline ?stream=1 and
	// /v1/jobs/{id}/events combined).
	MetricServeJobs      = "because_serve_jobs_total"
	MetricServeSSEEvents = "because_serve_sse_events_total"
)

// DurationBuckets are the default histogram buckets for stage spans, in
// seconds: sub-millisecond labeling up to multi-minute inference runs.
var DurationBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Counter is a monotonically increasing metric. The nil counter is a
// valid no-op, so instrumentation sites never need nil checks of their own.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric. The nil gauge is a valid no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the value by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets, Prometheus-style.
// The nil histogram is a valid no-op.
type Histogram struct {
	mu     sync.Mutex
	upper  []float64 // immutable after construction: ascending bucket upper bounds; +Inf is implicit
	counts []uint64  //lint:guard mu — len(upper)+1; last is the overflow (+Inf) bucket
	sum    float64   //lint:guard mu
	count  uint64    //lint:guard mu
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, labels) instance of a metric.
type series struct {
	labels  string // rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name    string
	kind    metricKind
	buckets []float64
	series  map[string]*series
}

// Registry holds metrics and renders them in Prometheus text exposition
// format or as a flat snapshot for tests. The nil registry is a valid
// no-op: every accessor returns a nil metric handle, whose methods do
// nothing. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family //lint:guard mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns (creating if needed) the counter for name and label
// pairs (alternating key, value). Registering the same name as a
// different metric kind panics: that is a programming error.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.seriesFor(name, kindCounter, nil, labels)
	return s.counter
}

// Gauge returns (creating if needed) the gauge for name and label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.seriesFor(name, kindGauge, nil, labels)
	return s.gauge
}

// Histogram returns (creating if needed) the histogram for name and label
// pairs. buckets are ascending upper bounds; nil selects DurationBuckets.
// The bucket layout is fixed by the first registration of the name.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DurationBuckets
	}
	s := r.seriesFor(name, kindHistogram, buckets, labels)
	return s.hist
}

func (r *Registry) seriesFor(name string, kind metricKind, buckets []float64, labels []string) *series {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			h := &Histogram{upper: f.buckets, counts: make([]uint64, len(f.buckets)+1)}
			s.hist = h
		}
		f.series[key] = s
	}
	return s
}

// labelKey renders label pairs, sorted by key, as {k="v",k2="v2"}. An odd
// trailing label is ignored.
func labelKey(labels []string) string {
	n := len(labels) / 2
	if n == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, n)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// withLabel splices an extra label into a rendered label set, keeping the
// Prometheus convention that histogram bucket series carry le="...".
func withLabel(rendered, key, value string) string {
	extra := key + `="` + escapeLabel(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every metric in the text exposition format,
// families sorted by name and series by label set — deterministic output,
// suitable both for scraping and for golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.gauge.Value()))
			case kindHistogram:
				h := s.hist
				h.mu.Lock()
				cum := uint64(0)
				for i, bound := range h.upper {
					cum += h.counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", formatFloat(bound)), cum)
				}
				cum += h.counts[len(h.upper)]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, formatFloat(h.sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, h.count)
				h.mu.Unlock()
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns a flat series → value map (counters and gauges by
// their rendered name, histograms as name_sum / name_count entries) —
// the JSON-able view tests assert against.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				out[f.name+s.labels] = float64(s.counter.Value())
			case kindGauge:
				out[f.name+s.labels] = s.gauge.Value()
			case kindHistogram:
				out[f.name+"_sum"+s.labels] = s.hist.Sum()
				out[f.name+"_count"+s.labels] = float64(s.hist.Count())
			}
		}
	}
	return out
}
