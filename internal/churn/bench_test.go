package churn

import (
	"testing"

	"because/internal/bgp"
	"because/internal/core"
)

// benchState compiles a mid-sized dataset (120 paths over ~30 ASes) and
// returns the churn state behind the ModelState interface — the benches
// below call through the interface deliberately, so they measure exactly
// what the samplers' hot loops execute (devirtualisation included or not).
func benchState(b *testing.B) core.ModelState {
	b.Helper()
	var obs []core.PathObs
	for k := 0; k < 120; k++ {
		obs = append(obs, core.PathObs{
			ASNs: []bgp.ASN{
				bgp.ASN(64500 + k%10),
				bgp.ASN(64600 + (k*3)%11),
				bgp.ASN(64700 + (k*7)%9),
			},
			Positive: k%4 == 0,
		})
	}
	ds, err := core.NewDataset(obs)
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, ds.NumNodes())
	for i := range p {
		p[i] = 0.05 + 0.9*float64(i)/float64(len(p))
	}
	return Model{BackgroundRate: 0.08, MissRate: 0.04}.NewState(ds, p)
}

// BenchmarkChurnDeltaApply exercises the MH inner-loop kernel pair — one
// DeltaFor probe plus one Apply commit per coordinate — through the
// ModelState interface. The //lint:hotpath contract shows up here
// dynamically: zero allocs/op.
func BenchmarkChurnDeltaApply(b *testing.B) {
	st := benchState(b)
	n := len(st.Probabilities())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			cand := 0.1 + 0.8*float64((i+j)%7)/7
			if st.DeltaFor(j, cand) > -1 {
				st.Apply(j, cand)
			}
		}
	}
}

// BenchmarkChurnGrad exercises the HMC leapfrog kernel — the full
// logit-space posterior gradient — through the ModelState interface,
// likewise pinned at zero allocs/op.
func BenchmarkChurnGrad(b *testing.B) {
	st := benchState(b)
	prior := core.Prior{Alpha: 0.4, Beta: 0.4}
	grad := make([]float64, len(st.Probabilities()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.GradLogPostTheta(prior, grad)
		st.Recompute()
	}
}
