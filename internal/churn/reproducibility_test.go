package churn

import (
	"math"
	"testing"

	"because/internal/core"
)

// churnInferConfig is a fast-but-complete Infer configuration drawing
// against the churn model: both samplers, two MH chains, non-zero
// background and miss rates so every churn-specific likelihood branch
// participates.
func churnInferConfig(seed uint64, workers int) core.Config {
	return core.Config{
		Seed:    seed,
		Chains:  2,
		Workers: workers,
		Model:   Model{BackgroundRate: 0.08, MissRate: 0.04},
		MH:      core.MHConfig{Sweeps: 200, BurnIn: 50},
		HMC:     core.HMCConfig{Iterations: 60, BurnIn: 20, Leapfrog: 6},
	}
}

// TestChurnWorkerCountInvariance extends the core reproducibility
// harness's bit-identity guarantee to the churn model: chains drawn
// through the ObservationModel interface must produce Float64bits-equal
// samples at every worker count.
func TestChurnWorkerCountInvariance(t *testing.T) {
	ds, err := core.NewDataset(testObs())
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Infer(ds, churnInferConfig(17, 1))
	if err != nil {
		t.Fatal(err)
	}
	if base.Model != "churn" {
		t.Fatalf("result model = %q, want churn", base.Model)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := core.Infer(ds, churnInferConfig(17, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertBitIdentical(t, workers, base, got)
	}
}

func assertBitIdentical(t *testing.T, workers int, want, got *core.Result) {
	t.Helper()
	if len(want.Chains) != len(got.Chains) {
		t.Fatalf("workers=%d: %d chains vs %d", workers, len(got.Chains), len(want.Chains))
	}
	for c := range want.Chains {
		w, g := want.Chains[c], got.Chains[c]
		if w.Method != g.Method || w.Accepted != g.Accepted || w.Proposed != g.Proposed {
			t.Fatalf("workers=%d chain %d: counters differ (%s %d/%d vs %s %d/%d)",
				workers, c, g.Method, g.Accepted, g.Proposed, w.Method, w.Accepted, w.Proposed)
		}
		if len(w.Samples) != len(g.Samples) {
			t.Fatalf("workers=%d chain %d: %d samples vs %d", workers, c, len(g.Samples), len(w.Samples))
		}
		for s := range w.Samples {
			for i := range w.Samples[s] {
				if math.Float64bits(w.Samples[s][i]) != math.Float64bits(g.Samples[s][i]) {
					t.Fatalf("workers=%d chain %d sample %d node %d: %x vs %x",
						workers, c, s, i,
						math.Float64bits(g.Samples[s][i]), math.Float64bits(w.Samples[s][i]))
				}
			}
		}
	}
	for i := range want.Summaries {
		if math.Float64bits(want.Summaries[i].Mean) != math.Float64bits(got.Summaries[i].Mean) {
			t.Fatalf("workers=%d summary %d: mean bits differ", workers, i)
		}
	}
}

// TestChurnSeedSensitivity guards against a degenerate sampler: different
// seeds must produce different chains.
func TestChurnSeedSensitivity(t *testing.T) {
	ds, err := core.NewDataset(testObs())
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Infer(ds, churnInferConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Infer(ds, churnInferConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.Chains[0].Samples[0][0]) == math.Float64bits(b.Chains[0].Samples[0][0]) &&
		math.Float64bits(a.Chains[0].Samples[1][0]) == math.Float64bits(b.Chains[0].Samples[1][0]) {
		t.Fatal("different seeds produced identical leading samples")
	}
}
