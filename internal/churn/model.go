// Package churn implements the second observation model of the BeCAUSe
// engine: binary path-change tomography in the spirit of "A Churn for the
// Better" (PAPERS.md), which localises the ASes responsible for route
// instability from per-path churn binaries the same way the paper's RFD
// model localises dampers from beacon signatures.
//
// The observable is weaker than an RFD signature — "did this path change
// at all during an observation window" — so the likelihood carries an
// explicit background-churn term: even with no responsible AS on the
// path, a path churns with probability BackgroundRate (maintenance,
// traffic engineering, unrelated flaps). With Q = Π_{i∈J}(1-p_i), miss
// rate m and background rate β:
//
//	P(labeled churned) = (1-m)·(1 - (1-β)·Q)
//	P(labeled stable)  = m + (1-m)·(1-β)·Q
//
// β = 0, m = 0 recovers the exact § 3.1 tomography likelihood of the
// default RFD model. The package implements core.ObservationModel; its
// kernels are //lint:hotpath (zero allocations, pinned by the benchmark
// trajectory) and the package sits on the becauselint determinism path.
package churn

import (
	"fmt"
	"math"

	"because/internal/core"
)

// Model is the churn observation model: core.RFDModel's likelihood with
// an additional per-path background-churn probability. The zero value is
// valid (and then exactly the § 3.1 likelihood under another name — use
// the default model instead in that case, so cache keys stay honest).
type Model struct {
	// BackgroundRate is β: the probability that a path churns for reasons
	// unrelated to any modeled AS. It absorbs the false positives that a
	// weak "any path change" labeling necessarily produces.
	BackgroundRate float64
	// MissRate is m: the probability that a truly-churned path is recorded
	// stable (the observation window missed the change).
	MissRate float64
}

// Name returns "churn" — the wire identifier carried on results and keyed
// into becaused's cache.
func (Model) Name() string { return "churn" }

// Validate bounds both rates to [0, 1).
func (m Model) Validate() error {
	if m.BackgroundRate < 0 || m.BackgroundRate >= 1 {
		return fmt.Errorf("churn: background rate %g outside [0, 1)", m.BackgroundRate)
	}
	if m.MissRate < 0 || m.MissRate >= 1 {
		return fmt.Errorf("churn: miss rate %g outside [0, 1)", m.MissRate)
	}
	return nil
}

// NewState compiles one chain's incremental likelihood state.
func (m Model) NewState(ds *core.Dataset, p []float64) core.ModelState {
	st := &state{
		ds:    ds,
		p:     append([]float64(nil), p...),
		miss:  m.MissRate,
		logBG: math.Log1p(-m.BackgroundRate),
		logQ:  make([]float64, ds.NumPaths()),
	}
	for i := range st.p {
		st.p[i] = core.ClampProb(st.p[i])
	}
	st.Recompute()
	return st
}

// state is the sampler's incremental view of the churn likelihood: the
// mirror of the default model's likState with every per-path log product
// shifted by log(1-β). logQ[j] caches Σ_{i∈J} log(1-p_i); the effective
// log no-churn probability of path j is logQ[j] + logBG.
type state struct {
	ds    *core.Dataset
	p     []float64
	miss  float64
	logBG float64 // log(1-β), folded into every per-path term
	logQ  []float64
}

// logStableTerm is the log-probability of observing a stable label on a
// path with modeled log no-show probability logQ.
func (st *state) logStableTerm(logQ float64) float64 {
	t := logQ + st.logBG
	if st.miss <= 0 {
		return t
	}
	// log((1-m)·(1-β)Q + m); the linear-space sum is safe, (1-β)Q ∈ (0,1].
	return math.Log((1-st.miss)*math.Exp(t) + st.miss)
}

// logChurnTerm is the log-probability of observing a churned label.
func (st *state) logChurnTerm(logQ float64) float64 {
	t := core.Log1mExp(logQ + st.logBG)
	if st.miss > 0 {
		t += math.Log1p(-st.miss)
	}
	return t
}

// CopyFrom makes st an exact copy of src's mutable state. Both states
// must come from the same Model's NewState over the same dataset (the
// HMC sampler's two swap states do by construction).
//
//lint:hotpath
func (st *state) CopyFrom(src core.ModelState) {
	other := src.(*state)
	copy(st.p, other.p)
	copy(st.logQ, other.logQ)
}

// Probabilities returns the state's own probability vector (mutated in
// place by Apply/SetP; callers must not modify it).
//
//lint:hotpath
func (st *state) Probabilities() []float64 { return st.p }

// SetP replaces the whole probability vector and rebuilds the caches.
//
//lint:hotpath
func (st *state) SetP(p []float64) {
	for i := range p {
		st.p[i] = core.ClampProb(p[i])
	}
	st.Recompute()
}

// Recompute rebuilds the logQ cache from scratch, cancelling numeric
// drift accumulated by incremental Apply updates.
//
//lint:hotpath
func (st *state) Recompute() {
	for j := range st.logQ {
		s := 0.0
		for _, i := range st.ds.PathNodes(j) {
			s += math.Log1p(-st.p[i])
		}
		st.logQ[j] = s
	}
}

// LogLik returns the full data log-likelihood at the current state.
//
//lint:hotpath
func (st *state) LogLik() float64 {
	total := 0.0
	for j := range st.logQ {
		if st.ds.PathPositive(j) {
			total += st.ds.PathWeight(j) * st.logChurnTerm(st.logQ[j])
		} else {
			total += st.ds.PathWeight(j) * st.logStableTerm(st.logQ[j])
		}
	}
	return total
}

// DeltaFor returns the change in log-likelihood if node i moved from its
// current value to pNew, without mutating state.
//
//lint:hotpath
func (st *state) DeltaFor(i int, pNew float64) float64 {
	pNew = core.ClampProb(pNew)
	dLogQ := math.Log1p(-pNew) - math.Log1p(-st.p[i])
	delta := 0.0
	for _, j := range st.ds.NodePathIndices(i) {
		w := st.ds.PathWeight(j)
		if st.ds.PathPositive(j) {
			delta += w * (st.logChurnTerm(st.logQ[j]+dLogQ) - st.logChurnTerm(st.logQ[j]))
		} else {
			delta += w * (st.logStableTerm(st.logQ[j]+dLogQ) - st.logStableTerm(st.logQ[j]))
		}
	}
	return delta
}

// Apply commits a new value for node i, updating the caches.
//
//lint:hotpath
func (st *state) Apply(i int, pNew float64) {
	pNew = core.ClampProb(pNew)
	dLogQ := math.Log1p(-pNew) - math.Log1p(-st.p[i])
	for _, j := range st.ds.NodePathIndices(i) {
		st.logQ[j] += dLogQ
	}
	st.p[i] = pNew
}

// GradLogPostTheta fills grad with the gradient of the log posterior in
// logit space θ (p = expit(θ)), including the Beta(prior) term and the
// change-of-variables Jacobian.
//
// With Q'_j = (1-β)·Π_{k∈J_j}(1-p_k) and ∂ log Q'_j/∂θ_i = -p_i:
//
//	∂/∂θ_i log prior+jac                       = a(1-p_i) - b·p_i
//	churned path j ∋ i: w log[(1-m)(1-Q')]     → +w p_i Q'/(1-Q')
//	stable  path j ∋ i: w log[m + (1-m)Q']     → -w p_i (1-m)Q'/((1-m)Q'+m)
//
// (the stable factor degenerates to 1 at m = 0, recovering -w·p_i).
//
//lint:hotpath
func (st *state) GradLogPostTheta(prior core.Prior, grad []float64) {
	for i := range grad {
		p := st.p[i]
		grad[i] = prior.Alpha*(1-p) - prior.Beta*p
	}
	for j := range st.logQ {
		q := math.Exp(st.logQ[j] + st.logBG)
		w := st.ds.PathWeight(j)
		if st.ds.PathPositive(j) {
			factor := q / (1 - q)
			if math.IsInf(factor, 1) || math.IsNaN(factor) {
				// Q' ≈ 1: the churned observation is nearly impossible;
				// push mass up with a large but finite factor (the same
				// guard the default model uses).
				factor = 1 / core.ClampProb(0)
			}
			for _, i := range st.ds.PathNodes(j) {
				grad[i] += w * st.p[i] * factor
			}
		} else {
			factor := (1 - st.miss) * q / ((1-st.miss)*q + st.miss)
			for _, i := range st.ds.PathNodes(j) {
				grad[i] -= w * st.p[i] * factor
			}
		}
	}
}

// LogPostTheta returns the log posterior density in θ space at the
// current state: LogLik + Σ_i [a·log p_i + b·log(1-p_i)] (Beta prior +
// Jacobian, dropping the constant -log B(a,b)).
//
//lint:hotpath
func (st *state) LogPostTheta(prior core.Prior) float64 {
	lp := st.LogLik()
	for _, p := range st.p {
		lp += prior.Alpha*math.Log(p) + prior.Beta*math.Log(1-p)
	}
	return lp
}
