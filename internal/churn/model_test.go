package churn

import (
	"math"
	"testing"

	"because/internal/bgp"
	"because/internal/core"
	"because/internal/label"
)

func testObs() []core.PathObs {
	var obs []core.PathObs
	for k := 0; k < 30; k++ {
		path := []bgp.ASN{
			bgp.ASN(64500 + k%4),
			bgp.ASN(64600 + (k*3)%5),
			bgp.ASN(64700 + (k*7)%3),
		}
		obs = append(obs, core.PathObs{ASNs: path, Positive: k%3 == 0, Weight: 1 + float64(k%2)})
	}
	return obs
}

func testDataset(t *testing.T) *core.Dataset {
	t.Helper()
	ds, err := core.NewDataset(testObs())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testP(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.05 + 0.9*float64(i)/float64(n)
	}
	return p
}

// TestZeroRatesRecoverDefaultModel pins the degenerate case: with β = 0
// and m = 0 the churn likelihood IS the § 3.1 tomography likelihood, so
// the state must agree with core.LogLik exactly.
func TestZeroRatesRecoverDefaultModel(t *testing.T) {
	ds := testDataset(t)
	p := testP(ds.NumNodes())
	st := Model{}.NewState(ds, p)
	if got, want := st.LogLik(), core.LogLik(ds, p); math.Abs(got-want) > 1e-9 {
		t.Fatalf("churn(0,0) log-lik %g, default model %g", got, want)
	}
}

// TestBackgroundRateShiftsStablePaths checks the likelihood ordering the
// background term exists for: raising β makes churned labels more likely
// and stable labels less likely at a fixed vector.
func TestBackgroundRateShiftsStablePaths(t *testing.T) {
	obs := []core.PathObs{
		{ASNs: []bgp.ASN{64500, 64501}, Positive: true},
		{ASNs: []bgp.ASN{64500, 64502}, Positive: false},
	}
	p := []float64{0.2, 0.2}
	// Isolate the per-path terms with full evaluations over
	// single-observation datasets.
	churned, err := core.NewDataset(obs[:1])
	if err != nil {
		t.Fatal(err)
	}
	stable, err := core.NewDataset(obs[1:])
	if err != nil {
		t.Fatal(err)
	}
	cLow := Model{BackgroundRate: 0.01}.NewState(churned, p).LogLik()
	cHigh := Model{BackgroundRate: 0.4}.NewState(churned, p).LogLik()
	if cHigh <= cLow {
		t.Errorf("churned path: higher β should raise the likelihood (%g vs %g)", cHigh, cLow)
	}
	sLow := Model{BackgroundRate: 0.01}.NewState(stable, p).LogLik()
	sHigh := Model{BackgroundRate: 0.4}.NewState(stable, p).LogLik()
	if sHigh >= sLow {
		t.Errorf("stable path: higher β should lower the likelihood (%g vs %g)", sHigh, sLow)
	}
}

// TestDeltaForMatchesFullRecompute checks the incremental-consistency
// contract of the ModelState interface: DeltaFor must equal the LogLik
// difference of actually applying the move, and Apply must keep the
// caches equal to a fresh state's.
func TestDeltaForMatchesFullRecompute(t *testing.T) {
	ds := testDataset(t)
	m := Model{BackgroundRate: 0.07, MissRate: 0.12}
	st := m.NewState(ds, testP(ds.NumNodes()))
	base := st.LogLik()
	for i := 0; i < ds.NumNodes(); i++ {
		for _, pNew := range []float64{0.01, 0.37, 0.93} {
			delta := st.DeltaFor(i, pNew)
			p2 := append([]float64(nil), st.Probabilities()...)
			p2[i] = pNew
			want := m.NewState(ds, p2).LogLik() - base
			if math.Abs(delta-want) > 1e-9 {
				t.Fatalf("node %d → %g: DeltaFor %g, full recompute %g", i, pNew, delta, want)
			}
		}
	}
	st.Apply(3, 0.81)
	fresh := m.NewState(ds, st.Probabilities())
	if got, want := st.LogLik(), fresh.LogLik(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("after Apply: incremental %g, fresh %g", got, want)
	}
}

// TestGradientFiniteDifference validates GradLogPostTheta against central
// finite differences of LogPostTheta in θ space.
func TestGradientFiniteDifference(t *testing.T) {
	ds := testDataset(t)
	m := Model{BackgroundRate: 0.05, MissRate: 0.1}
	prior := core.Prior{Alpha: 0.7, Beta: 1.3}
	n := ds.NumNodes()
	theta := make([]float64, n)
	for i := range theta {
		theta[i] = -1.5 + 0.2*float64(i%7)
	}
	pOf := func(th []float64) []float64 {
		p := make([]float64, len(th))
		for i, v := range th {
			p[i] = core.ClampProb(1 / (1 + math.Exp(-v)))
		}
		return p
	}
	st := m.NewState(ds, pOf(theta))
	grad := make([]float64, n)
	st.GradLogPostTheta(prior, grad)
	const h = 1e-6
	for i := 0; i < n; i++ {
		up := append([]float64(nil), theta...)
		dn := append([]float64(nil), theta...)
		up[i] += h
		dn[i] -= h
		want := (m.NewState(ds, pOf(up)).LogPostTheta(prior) - m.NewState(ds, pOf(dn)).LogPostTheta(prior)) / (2 * h)
		if math.Abs(grad[i]-want) > 1e-3*(1+math.Abs(want)) {
			t.Errorf("grad[%d] = %g, finite difference %g", i, grad[i], want)
		}
	}
}

// TestModelValidate bounds both rates.
func TestModelValidate(t *testing.T) {
	for _, m := range []Model{{}, {BackgroundRate: 0.5}, {MissRate: 0.3}, {BackgroundRate: 0.99, MissRate: 0.99}} {
		if err := m.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", m, err)
		}
	}
	for _, m := range []Model{{BackgroundRate: -0.1}, {BackgroundRate: 1}, {MissRate: -1}, {MissRate: 1}} {
		if err := m.Validate(); err == nil {
			t.Errorf("%+v: expected a validation error", m)
		}
	}
}

// TestLabelMeasurements checks the any-pair-changed binarisation and the
// origin-stripping convention.
func TestLabelMeasurements(t *testing.T) {
	ms := []label.Measurement{
		{Path: []bgp.ASN{1, 2, 3}, PairsTotal: 10, PairsRFD: 1},  // one change → churned
		{Path: []bgp.ASN{1, 4, 3}, PairsTotal: 10, PairsRFD: 0},  // stable
		{Path: []bgp.ASN{1, 5, 3}, PairsTotal: 10, PairsRFD: 10}, // full signature → churned
		{Path: []bgp.ASN{9}, PairsTotal: 10, PairsRFD: 10},       // origin-only → dropped
	}
	obs := LabelMeasurements(ms)
	if len(obs) != 3 {
		t.Fatalf("got %d observations, want 3", len(obs))
	}
	wantPos := []bool{true, false, true}
	for i, o := range obs {
		if o.Positive != wantPos[i] {
			t.Errorf("obs %d positive = %t, want %t", i, o.Positive, wantPos[i])
		}
		if len(o.ASNs) != 2 {
			t.Errorf("obs %d kept %d ASes, want 2 (origin stripped)", i, len(o.ASNs))
		}
	}
}
