package churn

import (
	"because/internal/core"
	"because/internal/label"
)

// LabelMeasurements binarises a campaign's measurements into path-change
// observations: a path is labeled churned when at least one of its
// burst/break pairs showed a route change (the path went quiet and
// re-appeared), regardless of whether the pattern clears the RFD
// labeler's 90%-of-pairs signature rule.
//
// This is a deliberately weaker signal than the RFD label — any single
// unexpected transition marks the path — which is exactly what makes it a
// churn observable: it fires on dampers, on flaky sessions and on
// background instability alike, and Model.BackgroundRate is what lets the
// inference tell those apart. The origin AS is dropped from each path
// (Measurement.TomographyPath), matching the tomography convention that
// an origin cannot act on its own prefix.
func LabelMeasurements(ms []label.Measurement) []core.PathObs {
	var out []core.PathObs
	for _, m := range ms {
		tomo := m.TomographyPath()
		if len(tomo) == 0 {
			continue
		}
		out = append(out, core.PathObs{
			ASNs:     tomo,
			Positive: m.PairsRFD >= 1,
		})
	}
	return out
}
