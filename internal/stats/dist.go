package stats

import (
	"fmt"
	"math"
)

// Dist is a univariate distribution on (a subset of) the reals that can be
// sampled and whose log-density can be evaluated. The BeCAUSe priors and the
// samplers' proposal machinery are expressed against this interface.
type Dist interface {
	// Sample draws one variate using rng.
	Sample(rng *RNG) float64
	// LogPDF returns the natural log of the density at x, or math.Inf(-1)
	// outside the support.
	LogPDF(x float64) float64
}

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// NewUniform returns a Uniform on [lo, hi]. It panics if hi <= lo.
func NewUniform(lo, hi float64) Uniform {
	if hi <= lo {
		panic(fmt.Sprintf("stats: invalid Uniform[%g,%g]", lo, hi))
	}
	return Uniform{Lo: lo, Hi: hi}
}

// Sample draws from the uniform.
func (u Uniform) Sample(rng *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*rng.Float64() }

// LogPDF returns -log(Hi-Lo) inside the support.
func (u Uniform) LogPDF(x float64) float64 {
	if x < u.Lo || x > u.Hi {
		return math.Inf(-1)
	}
	return -math.Log(u.Hi - u.Lo)
}

// Normal is the Gaussian distribution with mean Mu and standard deviation
// Sigma.
type Normal struct {
	Mu, Sigma float64
}

// Sample draws from the normal.
func (n Normal) Sample(rng *RNG) float64 { return n.Mu + n.Sigma*rng.Norm() }

// LogPDF is the Gaussian log density.
func (n Normal) LogPDF(x float64) float64 {
	if n.Sigma <= 0 {
		return math.Inf(-1)
	}
	z := (x - n.Mu) / n.Sigma
	return -0.5*z*z - math.Log(n.Sigma) - 0.5*math.Log(2*math.Pi)
}

// Beta is the Beta(Alpha, Beta) distribution on [0, 1]. It is the workhorse
// prior of the paper: Beta with parameters < 1 places mass near 0 and 1,
// matching the expectation that most ASes either damp (nearly) all routes
// or none.
type Beta struct {
	Alpha, BetaP float64
}

// NewBeta returns a Beta distribution; it panics on non-positive shape
// parameters.
func NewBeta(alpha, beta float64) Beta {
	if alpha <= 0 || beta <= 0 {
		panic(fmt.Sprintf("stats: invalid Beta(%g,%g)", alpha, beta))
	}
	return Beta{Alpha: alpha, BetaP: beta}
}

// Sample draws a Beta variate via two Gamma draws.
func (b Beta) Sample(rng *RNG) float64 {
	x := gammaSample(rng, b.Alpha)
	y := gammaSample(rng, b.BetaP)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// LogPDF is the Beta log density.
func (b Beta) LogPDF(x float64) float64 {
	if x < 0 || x > 1 {
		return math.Inf(-1)
	}
	// Handle the boundary: for alpha<1 the density diverges at 0; clamp so
	// the samplers see a large-but-finite value instead of +Inf.
	const eps = 1e-12
	if x < eps {
		x = eps
	}
	if x > 1-eps {
		x = 1 - eps
	}
	lg, _ := math.Lgamma(b.Alpha + b.BetaP)
	la, _ := math.Lgamma(b.Alpha)
	lb, _ := math.Lgamma(b.BetaP)
	return (b.Alpha-1)*math.Log(x) + (b.BetaP-1)*math.Log(1-x) + lg - la - lb
}

// gammaSample draws from Gamma(shape, 1) using Marsaglia–Tsang, with the
// standard boosting trick for shape < 1.
func gammaSample(rng *RNG, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// TruncNormal is a Normal(Mu, Sigma) truncated to [Lo, Hi], used as the
// random-walk proposal of the Metropolis–Hastings sampler on [0,1].
type TruncNormal struct {
	Mu, Sigma, Lo, Hi float64
}

// Sample draws by rejection; for the narrow proposals used here the
// acceptance rate is high so rejection is cheaper than inverse-CDF.
//
//lint:hotpath
func (t TruncNormal) Sample(rng *RNG) float64 {
	for i := 0; i < 1024; i++ {
		x := t.Mu + t.Sigma*rng.Norm()
		if x >= t.Lo && x <= t.Hi {
			return x
		}
	}
	// Pathological parameters: fall back to uniform on the interval.
	return t.Lo + (t.Hi-t.Lo)*rng.Float64()
}

// LogPDF is the truncated-normal log density including the normalising mass.
//
//lint:hotpath
func (t TruncNormal) LogPDF(x float64) float64 {
	if x < t.Lo || x > t.Hi {
		return math.Inf(-1)
	}
	n := Normal{Mu: t.Mu, Sigma: t.Sigma}
	mass := normCDF((t.Hi-t.Mu)/t.Sigma) - normCDF((t.Lo-t.Mu)/t.Sigma)
	if mass <= 0 {
		return math.Inf(-1)
	}
	return n.LogPDF(x) - math.Log(mass)
}

// normCDF is the standard normal CDF.
func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// Logit maps p in (0,1) to the real line; the HMC sampler runs in this
// unconstrained space.
func Logit(p float64) float64 { return math.Log(p / (1 - p)) }

// Expit is the inverse of Logit (the logistic function).
//
//lint:hotpath
func Expit(x float64) float64 {
	// Numerically stable for large |x|.
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
