package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Errorf("Mean = %g", m)
	}
	if v := Variance(xs); math.Abs(v-5.0/3) > 1e-12 {
		t.Errorf("Variance = %g, want %g", v, 5.0/3)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of 1 sample should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if Median(xs) != 2.5 {
		t.Errorf("Median = %g", Median(xs))
	}
}

func TestHDPIContainsMass(t *testing.T) {
	r := NewRNG(1)
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = r.Norm()
	}
	h := HDPIOf(samples, 0.95)
	if h.Mass < 0.95 {
		t.Errorf("HDPI mass %g < 0.95", h.Mass)
	}
	// For a standard normal, the 95% HPD is about [-1.96, 1.96].
	if h.Lo > -1.7 || h.Lo < -2.3 || h.Hi < 1.7 || h.Hi > 2.3 {
		t.Errorf("HDPI [%g,%g] far from [-1.96,1.96]", h.Lo, h.Hi)
	}
}

func TestHDPIIsNarrowestProperty(t *testing.T) {
	r := NewRNG(2)
	f := func(seed uint16) bool {
		rr := NewRNG(uint64(seed))
		n := 50 + rr.Intn(100)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = r.Float64()
		}
		h := HDPIOf(samples, 0.9)
		// Count contained samples and check the mass promise.
		cnt := 0
		for _, s := range samples {
			if s >= h.Lo && s <= h.Hi {
				cnt++
			}
		}
		return float64(cnt)/float64(n) >= 0.9 && h.Hi >= h.Lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHDPISkewedDistribution(t *testing.T) {
	// Posterior mass piled at 1 (a "strong damper" marginal): HDPI must hug 1.
	r := NewRNG(3)
	d := NewBeta(20, 1)
	samples := make([]float64, 4000)
	for i := range samples {
		samples[i] = d.Sample(r)
	}
	h := HDPIOf(samples, 0.95)
	if h.Hi < 0.99 {
		t.Errorf("skewed HDPI should reach ~1, got hi=%g", h.Hi)
	}
	if h.Lo < 0.7 {
		t.Errorf("skewed HDPI lower bound too low: %g", h.Lo)
	}
}

func TestHDPIEdgeCases(t *testing.T) {
	if h := HDPIOf(nil, 0.95); h.Lo != 0 || h.Hi != 0 {
		t.Error("empty HDPI should be zero")
	}
	h := HDPIOf([]float64{0.7}, 0.95)
	if h.Lo != 0.7 || h.Hi != 0.7 {
		t.Errorf("single-sample HDPI = %+v", h)
	}
	h = HDPIOf([]float64{1, 2, 3}, 1.0)
	if h.Lo != 1 || h.Hi != 3 || h.Mass != 1 {
		t.Errorf("full-mass HDPI = %+v", h)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.5, 0.99, 1.5, -1}
	h := Histogram(xs, 0, 1, 4)
	// -1 clamps into bin 0, 1.5 clamps into bin 3.
	want := []int{3, 0, 1, 2}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", h, want)
		}
	}
	if got := Histogram(xs, 0, 0, 4); len(got) != 4 {
		t.Error("degenerate range should still return n bins")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 2})
	if !sort.Float64sAreSorted(e.X) {
		t.Fatal("ECDF X not sorted")
	}
	if got := e.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %g", got)
	}
	if got := e.At(2); got != 0.75 {
		t.Errorf("At(2) = %g, want 0.75", got)
	}
	if got := e.At(10); got != 1 {
		t.Errorf("At(10) = %g", got)
	}
	if q := e.Quantile(0.5); math.Abs(q-2) > 1e-12 {
		t.Errorf("Quantile(0.5) = %g", q)
	}
}

func TestLinRegExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	l := LinRegFit(xs, ys)
	if math.Abs(l.Slope-2) > 1e-12 || math.Abs(l.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v", l)
	}
	if math.Abs(l.R2-1) > 1e-12 {
		t.Errorf("R2 = %g, want 1", l.R2)
	}
	if math.Abs(l.At(10)-21) > 1e-12 {
		t.Errorf("At(10) = %g", l.At(10))
	}
}

func TestLinRegDegenerate(t *testing.T) {
	l := LinRegFit([]float64{1, 1, 1}, []float64{2, 4, 6})
	if l.Slope != 0 || l.Intercept != 4 {
		t.Errorf("constant-x fit = %+v", l)
	}
	l = LinRegFit(nil, nil)
	if l.Slope != 0 {
		t.Errorf("empty fit slope = %g", l.Slope)
	}
}

func TestLinRegLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	LinRegFit([]float64{1}, []float64{1, 2})
}

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 3 TP, 1 FP, 1 FN, 5 TN
	for i := 0; i < 3; i++ {
		c.Add(true, true)
	}
	c.Add(true, false)
	c.Add(false, true)
	for i := 0; i < 5; i++ {
		c.Add(false, false)
	}
	if p := c.Precision(); math.Abs(p-0.75) > 1e-12 {
		t.Errorf("precision %g", p)
	}
	if r := c.Recall(); math.Abs(r-0.75) > 1e-12 {
		t.Errorf("recall %g", r)
	}
	if c.Total() != 10 {
		t.Errorf("total %d", c.Total())
	}
	if f := c.F1(); math.Abs(f-0.75) > 1e-12 {
		t.Errorf("F1 %g", f)
	}
}

func TestConfusionVacuous(t *testing.T) {
	var c Confusion
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Error("vacuous precision/recall should be 1")
	}
}

func TestKSStatistic(t *testing.T) {
	// Identical samples: distance 0.
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(xs, xs); d != 0 {
		t.Errorf("identical KS = %g", d)
	}
	// Disjoint supports: distance 1.
	if d := KSStatistic([]float64{1, 2}, []float64{10, 11}); d != 1 {
		t.Errorf("disjoint KS = %g", d)
	}
	// Same distribution, different samples: small distance.
	r := NewRNG(8)
	a := make([]float64, 3000)
	b := make([]float64, 3000)
	for i := range a {
		a[i], b[i] = r.Norm(), r.Norm()
	}
	if d := KSStatistic(a, b); d > 0.06 {
		t.Errorf("same-distribution KS = %g", d)
	}
	// Shifted distribution: clearly larger.
	for i := range b {
		b[i] += 1
	}
	if d := KSStatistic(a, b); d < 0.3 {
		t.Errorf("shifted KS = %g", d)
	}
	if !math.IsNaN(KSStatistic(nil, a)) {
		t.Error("empty sample KS should be NaN")
	}
}
