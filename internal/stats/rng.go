// Package stats provides the deterministic statistical substrate used by
// the BeCAUSe tomography engine and the measurement simulators: a seedable
// random number generator, the probability distributions required by the
// samplers and priors, posterior summaries (mean, highest posterior density
// intervals), simple regression, and classifier evaluation metrics.
//
// Everything in this package is deterministic given an RNG seed, which is
// what makes the experiment harness reproducible bit-for-bit.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256**, seeded via splitmix64). It is NOT safe for concurrent use;
// give each goroutine its own RNG, e.g. via Split.
//
// We implement our own generator rather than wrapping math/rand so that
// sequences are stable across Go releases: the experiment tables in
// EXPERIMENTS.md depend on exact reproducibility.
type RNG struct {
	s [4]uint64
	// splitKey is fixed at construction and seeds every child stream;
	// splits counts Split calls. Together they make Split a pure function
	// of (construction seed, split ordinal) — see Split.
	splitKey uint64
	splits   uint64
}

// splitmix64 advances sm and returns the next splitmix64 output.
func splitmix64(sm *uint64) uint64 {
	*sm += 0x9e3779b97f4a7c15
	z := *sm
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed using splitmix64 so that
// nearby seeds yield uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	r.splitKey = splitmix64(&sm)
	return r
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's own output, letting simulators and the parallel
// inference engine hand child components their own RNGs without
// interleaving effects.
//
// Splitting contract: the k-th Split of a generator depends only on the
// generator's construction seed and k — NOT on how many values have been
// drawn from it. Splitting before or after consumption yields identical
// child streams, and Split never advances the parent's draw stream. This
// order-insensitivity is what lets core.Infer pre-assign one stream per
// chain and run the chains in any order, on any number of workers, with
// bit-identical results (pinned by the reproducibility harness in
// internal/core).
func (r *RNG) Split() *RNG {
	r.splits++
	sm := r.splitKey ^ (r.splits * 0x9e3779b97f4a7c15)
	return NewRNG(splitmix64(&sm))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
//
//lint:hotpath
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a pseudo-random permutation of [0, len(p)),
// drawing exactly the values Perm(len(p)) would — the allocation-free
// form the samplers use with a reusable buffer (inside-out Fisher–Yates).
//
//lint:hotpath
func (r *RNG) PermInto(p []int) {
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Norm returns a standard normal variate (Box–Muller, polar form is avoided
// to keep the consumption of random bits per call constant).
//
//lint:hotpath
func (r *RNG) Norm() float64 {
	// Box–Muller; discard the second variate so every call consumes exactly
	// two uniforms, keeping downstream sequences alignment-stable when code
	// between calls changes.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exp returns an exponential variate with rate 1.
func (r *RNG) Exp() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }
