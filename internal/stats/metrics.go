package stats

// Confusion counts binary-classification outcomes against ground truth. It
// is used to reproduce the paper's Table 4 precision/recall rows and the
// Table 3 divergence taxonomy.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one (predicted, actual) observation.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Precision returns TP/(TP+FP), or 1 when nothing was predicted positive
// (vacuous precision, matching the convention used when reporting "100%
// precision" on small ground-truth sets).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 1 when there are no actual positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall (0 if both are 0).
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Total returns the number of recorded observations.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }
