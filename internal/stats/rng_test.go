package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	// splitmix seeding must not leave an all-zero state (xoshiro would be
	// stuck at zero forever).
	var nonzero bool
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64MeanVariance(t *testing.T) {
	r := NewRNG(11)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sq += f * f
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %g, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("uniform variance = %g, want ~%g", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("Intn(10) value %d drawn %d times out of 100000 (severely non-uniform)", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(13)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(17)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatalf("Exp() negative: %g", v)
		}
		sum += v
	}
	if m := sum / float64(n); math.Abs(m-1) > 0.02 {
		t.Errorf("exponential mean = %g, want ~1", m)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(23)
	child := r.Split()
	// Parent and child streams should not be identical.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream mirrors parent (%d/64 draws equal)", same)
	}
}

// TestSplitOrderInsensitive pins the splitting contract: the k-th Split of
// a generator depends only on the construction seed and k, not on how many
// values were drawn before splitting. This is what lets the parallel
// inference engine pre-assign chain streams in any order.
func TestSplitOrderInsensitive(t *testing.T) {
	f := func(seed uint64, drawsRaw uint8, splitsRaw uint8) bool {
		draws := int(drawsRaw % 50)
		nSplits := int(splitsRaw%5) + 1

		// Reference: split nSplits times with no consumption at all.
		ref := NewRNG(seed)
		want := make([][]uint64, nSplits)
		for k := range want {
			want[k] = drawN(ref.Split(), 32)
		}

		// Same seed, but interleave parent draws before and between splits.
		mixed := NewRNG(seed)
		for i := 0; i < draws; i++ {
			mixed.Uint64()
		}
		for k := 0; k < nSplits; k++ {
			got := drawN(mixed.Split(), 32)
			for i := range got {
				if got[i] != want[k][i] {
					return false
				}
			}
			for i := 0; i <= draws%7; i++ {
				mixed.Uint64()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitDoesNotAdvanceParent: the parent's draw stream must be
// unaffected by splitting — otherwise inserting a Split call anywhere
// would shift every downstream sequence.
func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	a.Split()
	a.Split()
	for i := 0; i < 256; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split advanced the parent stream (diverged at draw %d)", i)
		}
	}
}

// TestSplitPairwiseIndependent checks that sibling streams (and the parent)
// are pairwise distinct with no detectable mirroring: across random seeds,
// any two of {parent, child_1..child_k} share essentially no draws.
func TestSplitPairwiseIndependent(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%4) + 2
		r := NewRNG(seed)
		streams := make([][]uint64, 0, k+1)
		for i := 0; i < k; i++ {
			streams = append(streams, drawN(r.Split(), 64))
		}
		streams = append(streams, drawN(r, 64)) // the parent itself
		for i := 0; i < len(streams); i++ {
			for j := i + 1; j < len(streams); j++ {
				same := 0
				for n := range streams[i] {
					if streams[i][n] == streams[j][n] {
						same++
					}
				}
				if same > 2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func drawN(r *RNG, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(29)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(31)
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / 100000
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency %g", frac)
	}
}
