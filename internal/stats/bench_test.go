package stats

import "testing"

var benchSinkF float64

// BenchmarkPermInto pins the allocation-free permutation used by the MH
// sweep kernel: the caller owns the buffer, so allocs/op must be zero.
func BenchmarkPermInto(b *testing.B) {
	r := NewRNG(1)
	p := make([]int, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.PermInto(p)
	}
}

// BenchmarkTruncNormalSample pins the proposal draw on the MH hot path
// (//lint:hotpath): rejection sampling over value types, zero allocs/op.
func BenchmarkTruncNormalSample(b *testing.B) {
	r := NewRNG(1)
	d := TruncNormal{Mu: 0.4, Sigma: 0.15, Lo: 0, Hi: 1}
	s := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s += d.Sample(r)
	}
	benchSinkF = s
}
