package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformSampleInRange(t *testing.T) {
	r := NewRNG(1)
	u := NewUniform(2, 5)
	for i := 0; i < 10000; i++ {
		x := u.Sample(r)
		if x < 2 || x > 5 {
			t.Fatalf("uniform sample %g outside [2,5]", x)
		}
	}
}

func TestUniformLogPDF(t *testing.T) {
	u := NewUniform(0, 2)
	if got, want := u.LogPDF(1), -math.Log(2); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogPDF(1) = %g, want %g", got, want)
	}
	if !math.IsInf(u.LogPDF(-0.1), -1) || !math.IsInf(u.LogPDF(2.1), -1) {
		t.Error("LogPDF outside support should be -Inf")
	}
}

func TestUniformPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewUniform(1,1) did not panic")
		}
	}()
	NewUniform(1, 1)
}

func TestNormalLogPDF(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	want := -0.5 * math.Log(2*math.Pi)
	if got := n.LogPDF(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("stdnormal LogPDF(0) = %g, want %g", got, want)
	}
	// Symmetry.
	if a, b := n.LogPDF(1.3), n.LogPDF(-1.3); math.Abs(a-b) > 1e-12 {
		t.Errorf("normal LogPDF not symmetric: %g vs %g", a, b)
	}
}

func TestNormalSampleMoments(t *testing.T) {
	r := NewRNG(2)
	n := Normal{Mu: 3, Sigma: 2}
	var sum, sq float64
	N := 200000
	for i := 0; i < N; i++ {
		v := n.Sample(r)
		sum += v
		sq += v * v
	}
	mean := sum / float64(N)
	variance := sq/float64(N) - mean*mean
	if math.Abs(mean-3) > 0.03 {
		t.Errorf("mean %g want 3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("variance %g want 4", variance)
	}
}

func TestBetaMoments(t *testing.T) {
	cases := []struct{ a, b float64 }{{2, 5}, {0.5, 0.5}, {1, 1}, {5, 1}}
	r := NewRNG(3)
	for _, c := range cases {
		d := NewBeta(c.a, c.b)
		var sum float64
		N := 100000
		for i := 0; i < N; i++ {
			x := d.Sample(r)
			if x < 0 || x > 1 {
				t.Fatalf("Beta(%g,%g) sample %g outside [0,1]", c.a, c.b, x)
			}
			sum += x
		}
		want := c.a / (c.a + c.b)
		if got := sum / float64(N); math.Abs(got-want) > 0.01 {
			t.Errorf("Beta(%g,%g) mean = %g, want %g", c.a, c.b, got, want)
		}
	}
}

func TestBetaLogPDFUniformCase(t *testing.T) {
	// Beta(1,1) is the uniform on [0,1]: density 1 everywhere.
	d := NewBeta(1, 1)
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := d.LogPDF(x); math.Abs(got) > 1e-9 {
			t.Errorf("Beta(1,1).LogPDF(%g) = %g, want 0", x, got)
		}
	}
}

func TestBetaLogPDFOutsideSupport(t *testing.T) {
	d := NewBeta(2, 2)
	if !math.IsInf(d.LogPDF(-0.01), -1) || !math.IsInf(d.LogPDF(1.01), -1) {
		t.Error("Beta LogPDF outside [0,1] should be -Inf")
	}
}

func TestBetaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBeta(0,1) did not panic")
		}
	}()
	NewBeta(0, 1)
}

func TestTruncNormalSupport(t *testing.T) {
	r := NewRNG(4)
	tn := TruncNormal{Mu: 0.5, Sigma: 0.2, Lo: 0, Hi: 1}
	for i := 0; i < 10000; i++ {
		x := tn.Sample(r)
		if x < 0 || x > 1 {
			t.Fatalf("truncated normal escaped support: %g", x)
		}
	}
	if !math.IsInf(tn.LogPDF(-0.5), -1) {
		t.Error("TruncNormal LogPDF outside support should be -Inf")
	}
	// Density must integrate above the untruncated one inside the support.
	plain := Normal{Mu: 0.5, Sigma: 0.2}
	if tn.LogPDF(0.5) <= plain.LogPDF(0.5) {
		t.Error("truncated density should exceed untruncated inside support")
	}
}

func TestLogitExpitRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := Expit(raw) // any real -> (0,1)
		if p <= 0 || p >= 1 {
			// extreme inputs saturate; skip
			return true
		}
		back := Expit(Logit(p))
		return math.Abs(back-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpitStableForLargeInputs(t *testing.T) {
	if v := Expit(1000); v != 1 {
		t.Errorf("Expit(1000) = %g", v)
	}
	if v := Expit(-1000); v != 0 {
		t.Errorf("Expit(-1000) = %g", v)
	}
	if v := Expit(0); math.Abs(v-0.5) > 1e-15 {
		t.Errorf("Expit(0) = %g", v)
	}
}

func TestGammaSampleSmallShape(t *testing.T) {
	// shape < 1 exercises the boosting branch.
	r := NewRNG(5)
	var sum float64
	N := 100000
	for i := 0; i < N; i++ {
		v := gammaSample(r, 0.3)
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("gamma(0.3) sample invalid: %g", v)
		}
		sum += v
	}
	if m := sum / float64(N); math.Abs(m-0.3) > 0.02 {
		t.Errorf("gamma(0.3) mean = %g, want 0.3", m)
	}
}
