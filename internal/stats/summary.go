package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return sortedQuantile(s, q)
}

func sortedQuantile(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// HDPI is a highest posterior density interval: the narrowest interval
// [Lo, Hi] containing the requested share of posterior samples. Its width
// quantifies the (asymmetric) spread of a marginal and hence the certainty
// of the inference, exactly as used in § 5.1 of the paper.
type HDPI struct {
	Lo, Hi float64
	// Mass is the share of samples actually contained (>= the request).
	Mass float64
}

// Width returns Hi - Lo.
func (h HDPI) Width() float64 { return h.Hi - h.Lo }

// HDPIOf computes the highest-density interval containing at least mass
// (e.g. 0.95) of the samples. For an empty input it returns a zero HDPI; for
// a single sample, the degenerate interval at that sample.
func HDPIOf(samples []float64, mass float64) HDPI {
	n := len(samples)
	if n == 0 {
		return HDPI{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if mass >= 1 {
		return HDPI{Lo: s[0], Hi: s[n-1], Mass: 1}
	}
	k := int(math.Ceil(mass * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	// Slide a window of k consecutive order statistics; the narrowest window
	// is the HDPI for a unimodal sample cloud (and a good approximation
	// otherwise).
	bestLo, bestHi := s[0], s[k-1]
	for i := 1; i+k-1 < n; i++ {
		if s[i+k-1]-s[i] < bestHi-bestLo {
			bestLo, bestHi = s[i], s[i+k-1]
		}
	}
	return HDPI{Lo: bestLo, Hi: bestHi, Mass: float64(k) / float64(n)}
}

// Histogram bins xs into n equal-width bins over [lo, hi]. Values outside
// the range are clamped into the first/last bin; this matches the paper's
// 40-bin burst histograms where every update belongs to some bin.
func Histogram(xs []float64, lo, hi float64, n int) []int {
	counts := make([]int, n)
	if n == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	return counts
}

// ECDF returns the empirical CDF of xs evaluated at the sorted sample
// points: pairs (x_i, i/n). It is used to print the figure-13 style CDFs.
type ECDF struct {
	X []float64 // sorted sample values
	P []float64 // cumulative probabilities, P[i] = (i+1)/n
}

// NewECDF builds the empirical CDF of xs.
func NewECDF(xs []float64) ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	p := make([]float64, len(s))
	for i := range p {
		p[i] = float64(i+1) / float64(len(s))
	}
	return ECDF{X: s, P: p}
}

// At returns the CDF value at x.
func (e ECDF) At(x float64) float64 {
	i := sort.SearchFloat64s(e.X, x)
	// SearchFloat64s returns the first index with X[i] >= x; we want the
	// share of samples <= x.
	for i < len(e.X) && e.X[i] == x {
		i++
	}
	return float64(i) / float64(len(e.X))
}

// Quantile returns the q-quantile of the ECDF's samples.
func (e ECDF) Quantile(q float64) float64 {
	if len(e.X) == 0 {
		return math.NaN()
	}
	return sortedQuantile(e.X, q)
}

// LinReg is an ordinary least squares fit y = Intercept + Slope*x.
type LinReg struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination (0 for a degenerate fit).
	R2 float64
}

// LinRegFit fits a least-squares line through (xs[i], ys[i]). It panics if
// the slices differ in length and returns a zero-slope fit for n < 2 or
// constant xs.
func LinRegFit(xs, ys []float64) LinReg {
	if len(xs) != len(ys) {
		panic("stats: LinRegFit length mismatch")
	}
	if len(xs) < 2 {
		r := LinReg{}
		if len(ys) == 1 {
			r.Intercept = ys[0]
		}
		return r
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinReg{Intercept: my}
	}
	slope := sxy / sxx
	reg := LinReg{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		reg.R2 = (sxy * sxy) / (sxx * syy)
	}
	return reg
}

// At evaluates the fitted line at x.
func (l LinReg) At(x float64) float64 { return l.Intercept + l.Slope*x }

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic: the
// maximum vertical distance between the empirical CDFs of xs and ys. The
// paper's Figure 8 argues two beacon families "show the same
// characteristics"; the statistic quantifies that claim.
func KSStatistic(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN()
	}
	ex, ey := NewECDF(xs), NewECDF(ys)
	maxD := 0.0
	for _, x := range ex.X {
		if d := math.Abs(ex.At(x) - ey.At(x)); d > maxD {
			maxD = d
		}
	}
	for _, y := range ey.X {
		if d := math.Abs(ex.At(y) - ey.At(y)); d > maxD {
			maxD = d
		}
	}
	return maxD
}
