// Package heuristics implements the three passive-measurement heuristics
// of § 5.2, used as the comparison baseline for BeCAUSe:
//
//	M1 — RFD path ratio: the share of an AS's paths showing the RFD signal;
//	M2 — alternative paths: a damping AS does not appear on the alternative
//	     paths revealed by path hunting while the primary is damped;
//	M3 — announcement distribution: a damping AS's update stream thins out
//	     toward the end of a Burst (Figure 10), quantified by the slope of
//	     a 40-bin histogram's linear regression.
//
// The final per-AS output is the average of the three metrics; an AS is
// flagged RFD when the average crosses the (tunable) threshold. Unlike
// BeCAUSe, the heuristics need this tuning, cannot express uncertainty,
// and mislabel downstream ASes that merely sit behind a damper — the
// failure modes Table 3 documents.
package heuristics

import (
	"sort"

	"because/internal/beacon"
	"because/internal/bgp"
	"because/internal/collector"
	"because/internal/label"
	"because/internal/stats"
)

// Config tunes the heuristics. Zero values select the paper's settings.
type Config struct {
	// Threshold flags an AS as RFD when the average metric crosses it
	// (default 0.5).
	Threshold float64
	// Bins is the Burst histogram resolution for M3 (default 40).
	Bins int
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	if c.Bins == 0 {
		c.Bins = 40
	}
	return c
}

// Input bundles everything the heuristics read: labeled path measurements
// (M1, M2) and the raw archived updates plus schedules (M3).
type Input struct {
	Measurements []label.Measurement
	Entries      []collector.Entry
	Schedules    []beacon.Schedule
}

// Score is the per-AS heuristic outcome.
type Score struct {
	ASN bgp.ASN
	// M1, M2, M3 are the individual metrics in [0,1]; NaN-free (a metric
	// without data contributes 0).
	M1, M2, M3 float64
	// Avg is the mean of the available metrics.
	Avg float64
	// RFD is the thresholded decision.
	RFD bool
}

// Evaluate runs all three heuristics and returns per-AS scores sorted by
// ASN.
func Evaluate(in Input, cfg Config) []Score {
	cfg = cfg.withDefaults()
	m1 := pathRatio(in.Measurements)
	m2 := alternativePaths(in.Measurements)
	m3 := burstDistribution(in.Entries, in.Schedules, cfg.Bins)

	asns := make(map[bgp.ASN]bool)
	for a := range m1 {
		asns[a] = true
	}
	for a := range m2 {
		asns[a] = true
	}
	for a := range m3 {
		asns[a] = true
	}
	var out []Score
	for a := range asns {
		s := Score{ASN: a}
		n := 0
		if v, ok := m1[a]; ok {
			s.M1 = v
			s.Avg += v
			n++
		}
		if v, ok := m2[a]; ok {
			s.M2 = v
			s.Avg += v
			n++
		}
		if v, ok := m3[a]; ok {
			s.M3 = v
			s.Avg += v
			n++
		}
		if n > 0 {
			s.Avg /= float64(n)
		}
		s.RFD = s.Avg >= cfg.Threshold
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// pathRatio computes M1: #RFD paths / #paths per AS, over the tomography
// portion of each path (the origin cannot damp its own prefix).
func pathRatio(ms []label.Measurement) map[bgp.ASN]float64 {
	rfd := make(map[bgp.ASN]int)
	total := make(map[bgp.ASN]int)
	for _, m := range ms {
		for _, a := range m.TomographyPath() {
			total[a]++
			if m.RFD {
				rfd[a]++
			}
		}
	}
	out := make(map[bgp.ASN]float64, len(total))
	for a, t := range total {
		out[a] = float64(rfd[a]) / float64(t)
	}
	return out
}

// alternativePaths computes M2: for every damped path, the alternative
// paths between the same beacon site and vantage point; per AS, the average
// share of alternatives NOT containing the AS. A damping AS is avoided by
// the alternatives (path hunting routes around the suppression), so its
// share approaches 1.
func alternativePaths(ms []label.Measurement) map[bgp.ASN]float64 {
	type pairKey struct {
		site bgp.ASN
		vp   collector.VantagePoint
	}
	groups := make(map[pairKey][]label.Measurement)
	for _, m := range ms {
		groups[pairKey{m.Site, m.VP}] = append(groups[pairKey{m.Site, m.VP}], m)
	}
	// Iterate the (site, VP) groups in a fixed order: the per-AS sums below
	// accumulate floats, and float addition is order-sensitive at the bit
	// level — randomised map order would perturb scores between runs.
	keys := make([]pairKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].site != keys[j].site {
			return keys[i].site < keys[j].site
		}
		if keys[i].vp.AS != keys[j].vp.AS {
			return keys[i].vp.AS < keys[j].vp.AS
		}
		return keys[i].vp.Project < keys[j].vp.Project
	})
	sum := make(map[bgp.ASN]float64)
	cnt := make(map[bgp.ASN]int)
	for _, key := range keys {
		group := groups[key]
		for _, m := range group {
			if !m.RFD {
				continue
			}
			mKey := bgp.PathKey(m.Path)
			var alts [][]bgp.ASN
			for _, alt := range group {
				if bgp.PathKey(alt.Path) != mKey {
					alts = append(alts, alt.TomographyPath())
				}
			}
			if len(alts) == 0 {
				continue
			}
			for _, a := range m.TomographyPath() {
				without := 0
				for _, alt := range alts {
					found := false
					for _, x := range alt {
						if x == a {
							found = true
							break
						}
					}
					if !found {
						without++
					}
				}
				sum[a] += float64(without) / float64(len(alts))
				cnt[a]++
			}
		}
	}
	out := make(map[bgp.ASN]float64, len(sum))
	for a, s := range sum {
		out[a] = s / float64(cnt[a])
	}
	return out
}

// BurstHistogramOf returns one AS's Burst announcement histogram and its
// fitted regression line — the raw material of the paper's Figure 10. ok is
// false when the AS was not observed on any announcement.
func BurstHistogramOf(entries []collector.Entry, schedules []beacon.Schedule, asn bgp.ASN, bins int) (hist []float64, reg stats.LinReg, ok bool) {
	if bins == 0 {
		bins = 40
	}
	hists := burstHistograms(entries, schedules, bins)
	h, ok := hists[asn]
	if !ok {
		return nil, stats.LinReg{}, false
	}
	xs := make([]float64, bins)
	for i := range xs {
		xs[i] = float64(i)
	}
	return h, stats.LinRegFit(xs, h), true
}

// burstHistograms bins the Burst announcements per AS: every announcement
// observed during a Burst window is credited to each non-origin AS on its
// cleaned path.
func burstHistograms(entries []collector.Entry, schedules []beacon.Schedule, bins int) map[bgp.ASN][]float64 {
	scheds := make(map[bgp.Prefix]beacon.Schedule)
	for _, s := range schedules {
		if !s.IsAnchor() {
			scheds[s.Prefix] = s
		}
	}
	hists := make(map[bgp.ASN][]float64)
	for _, e := range entries {
		if e.Update.IsWithdrawalOnly() {
			continue
		}
		for _, p := range e.Update.NLRI {
			sched, ok := scheds[p]
			if !ok {
				continue
			}
			for pair := 0; pair < sched.Pairs; pair++ {
				start, end, _ := sched.PairWindow(pair)
				if e.Exported.Before(start) || e.Exported.After(end) {
					continue
				}
				frac := float64(e.Exported.Sub(start)) / float64(end.Sub(start))
				bin := int(frac * float64(bins))
				if bin >= bins {
					bin = bins - 1
				}
				path := e.Update.ASPath.Clean()
				for k, a := range path {
					if k == len(path)-1 {
						break // origin cannot damp its own prefix
					}
					h := hists[a]
					if h == nil {
						h = make([]float64, bins)
						hists[a] = h
					}
					h[bin]++
				}
				break
			}
		}
	}
	return hists
}

// burstDistribution computes M3: per AS, histogram the announcements
// observed during Bursts on paths containing the AS into bins, fit a line
// to the bin heights, and map the relative decline over the Burst to a
// score in [0, 1] — flat streams score ~0, streams that die out score ~1.
func burstDistribution(entries []collector.Entry, schedules []beacon.Schedule, bins int) map[bgp.ASN]float64 {
	hists := burstHistograms(entries, schedules, bins)
	out := make(map[bgp.ASN]float64, len(hists))
	xs := make([]float64, bins)
	for i := range xs {
		xs[i] = float64(i)
	}
	for a, h := range hists {
		reg := stats.LinRegFit(xs, h)
		if reg.Intercept <= 0 {
			out[a] = 0
			continue
		}
		// Relative decline from the fitted start to the fitted end of the
		// Burst: 1 means the stream died out completely.
		decline := -reg.Slope * float64(bins-1) / reg.Intercept
		if decline < 0 {
			decline = 0
		}
		if decline > 1 {
			decline = 1
		}
		out[a] = decline
	}
	return out
}
