package heuristics

import (
	"math"
	"testing"
	"time"

	"because/internal/beacon"
	"because/internal/bgp"
	"because/internal/collector"
	"because/internal/label"
)

var (
	t0   = time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	vpA  = collector.VantagePoint{AS: 1, Project: collector.RIS}
	vpB  = collector.VantagePoint{AS: 2, Project: collector.RouteViews}
	pfxT = bgp.MustPrefix("10.1.1.0/24")
)

func meas(vp collector.VantagePoint, site bgp.ASN, rfd bool, path ...bgp.ASN) label.Measurement {
	return label.Measurement{VP: vp, Site: site, Prefix: pfxT, Path: path, RFD: rfd, PairsTotal: 4}
}

func TestPathRatio(t *testing.T) {
	ms := []label.Measurement{
		meas(vpA, 9, true, 1, 5, 9),
		meas(vpB, 9, true, 2, 5, 9),
		meas(vpA, 8, false, 1, 5, 8),
		meas(vpB, 8, false, 2, 6, 8),
	}
	m1 := pathRatio(ms)
	if got := m1[5]; math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("M1(5) = %g, want 2/3", got)
	}
	if got := m1[6]; got != 0 {
		t.Errorf("M1(6) = %g", got)
	}
	// Origin ASes are excluded from the tomography portion.
	if _, ok := m1[9]; ok {
		t.Error("origin AS scored by M1")
	}
}

func TestAlternativePaths(t *testing.T) {
	// Damped path 1-5-9 (site 9, vpA); alternatives for (site 9, vpA):
	// 1-6-9 and 1-7-9. AS 5 is on no alternative => share 1; AS 1 is on
	// all alternatives => share 0.
	ms := []label.Measurement{
		meas(vpA, 9, true, 1, 5, 9),
		meas(vpA, 9, false, 1, 6, 9),
		meas(vpA, 9, false, 1, 7, 9),
	}
	m2 := alternativePaths(ms)
	if got := m2[5]; got != 1 {
		t.Errorf("M2(5) = %g, want 1", got)
	}
	if got := m2[1]; got != 0 {
		t.Errorf("M2(1) = %g, want 0", got)
	}
	// ASes only on non-damped paths are not scored by M2.
	if _, ok := m2[6]; ok {
		t.Error("AS6 scored by M2")
	}
}

func TestAlternativePathsNoAlternatives(t *testing.T) {
	ms := []label.Measurement{meas(vpA, 9, true, 1, 5, 9)}
	if got := alternativePaths(ms); len(got) != 0 {
		t.Errorf("M2 without alternatives = %v", got)
	}
}

func burstSched() beacon.Schedule {
	return beacon.Schedule{
		Site: 9, Prefix: pfxT, UpdateInterval: time.Minute,
		BurstLen: 40 * time.Minute, BreakLen: 80 * time.Minute, Pairs: 1, Start: t0,
	}
}

func entryAt(at time.Time, path ...bgp.ASN) collector.Entry {
	return collector.Entry{
		VP: vpA, Received: at, Exported: at,
		Update: &bgp.Update{
			ASPath: bgp.NewPath(path...),
			NLRI:   []bgp.Prefix{pfxT},
		},
	}
}

func TestBurstDistributionDampedVsFlat(t *testing.T) {
	sched := burstSched()
	var entries []collector.Entry
	// Damped stream: announcements only in the first quarter of the burst.
	for m := 0; m < 10; m++ {
		entries = append(entries, entryAt(t0.Add(time.Duration(m)*time.Minute), 1, 5, 9))
	}
	m3 := burstDistribution(entries, []beacon.Schedule{sched}, 40)
	if got := m3[5]; got < 0.8 {
		t.Errorf("damped M3(5) = %g, want near 1", got)
	}

	// Flat stream: announcements all through the burst.
	entries = nil
	for m := 0; m < 39; m += 2 {
		entries = append(entries, entryAt(t0.Add(time.Duration(m)*time.Minute), 1, 6, 9))
	}
	m3 = burstDistribution(entries, []beacon.Schedule{sched}, 40)
	if got := m3[6]; got > 0.3 {
		t.Errorf("flat M3(6) = %g, want near 0", got)
	}
}

func TestBurstDistributionIgnoresOriginAndWithdrawals(t *testing.T) {
	sched := burstSched()
	entries := []collector.Entry{
		entryAt(t0.Add(time.Minute), 1, 5, 9),
		{VP: vpA, Received: t0.Add(2 * time.Minute), Exported: t0.Add(2 * time.Minute),
			Update: &bgp.Update{Withdrawn: []bgp.Prefix{pfxT}}},
	}
	m3 := burstDistribution(entries, []beacon.Schedule{sched}, 40)
	if _, ok := m3[9]; ok {
		t.Error("origin scored by M3")
	}
	if _, ok := m3[5]; !ok {
		t.Error("transit AS not scored")
	}
}

func TestEvaluateEndToEnd(t *testing.T) {
	sched := burstSched()
	ms := []label.Measurement{
		meas(vpA, 9, true, 1, 5, 9),
		meas(vpA, 9, false, 1, 6, 9),
		meas(vpB, 9, false, 2, 6, 9),
	}
	var entries []collector.Entry
	for m := 0; m < 10; m++ {
		entries = append(entries, entryAt(t0.Add(time.Duration(m)*time.Minute), 1, 5, 9))
	}
	for m := 0; m < 39; m += 2 {
		entries = append(entries, entryAt(t0.Add(time.Duration(m)*time.Minute), 1, 6, 9))
	}
	scores := Evaluate(Input{Measurements: ms, Entries: entries, Schedules: []beacon.Schedule{sched}}, Config{})
	byASN := make(map[bgp.ASN]Score)
	for _, s := range scores {
		byASN[s.ASN] = s
	}
	if !byASN[5].RFD {
		t.Errorf("damping AS5 not flagged: %+v", byASN[5])
	}
	if byASN[6].RFD {
		t.Errorf("clean AS6 flagged: %+v", byASN[6])
	}
	// Output must be sorted by ASN.
	for i := 1; i < len(scores); i++ {
		if scores[i].ASN <= scores[i-1].ASN {
			t.Fatal("scores not sorted")
		}
	}
}

func TestEvaluateEmptyInput(t *testing.T) {
	if got := Evaluate(Input{}, Config{}); len(got) != 0 {
		t.Errorf("empty input produced %d scores", len(got))
	}
}

func TestThresholdTuning(t *testing.T) {
	ms := []label.Measurement{
		meas(vpA, 9, true, 1, 5, 9),
		meas(vpB, 9, false, 2, 5, 9),
	}
	// M1(5) = 0.5; with threshold 0.4 it flags, with 0.6 it does not.
	lo := Evaluate(Input{Measurements: ms}, Config{Threshold: 0.4})
	hi := Evaluate(Input{Measurements: ms}, Config{Threshold: 0.6})
	find := func(scores []Score, a bgp.ASN) Score {
		for _, s := range scores {
			if s.ASN == a {
				return s
			}
		}
		t.Fatalf("AS%d missing", a)
		return Score{}
	}
	if !find(lo, 5).RFD {
		t.Error("threshold 0.4 did not flag")
	}
	if find(hi, 5).RFD {
		t.Error("threshold 0.6 flagged")
	}
}
