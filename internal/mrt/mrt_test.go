package mrt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"because/internal/bgp"
)

func testUpdate(ts uint32) *bgp.Update {
	return &bgp.Update{
		Origin:     bgp.OriginIGP,
		ASPath:     bgp.NewPath(64500, 3356, 65010),
		NextHop:    netip.MustParseAddr("192.0.2.1"),
		NLRI:       []bgp.Prefix{bgp.MustPrefix("203.0.113.0/24")},
		Aggregator: &bgp.Aggregator{AS: 65010, ID: ts},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	base := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		err := w.WriteUpdate(base.Add(time.Duration(i)*time.Minute),
			bgp.ASN(64500+i), 65535,
			netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"),
			testUpdate(uint32(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, rec := range recs {
		if !rec.IsUpdate() {
			t.Fatalf("record %d not an update", i)
		}
		if rec.PeerAS != bgp.ASN(64500+i) {
			t.Errorf("peer AS = %v", rec.PeerAS)
		}
		if rec.LocalAS != 65535 {
			t.Errorf("local AS = %v", rec.LocalAS)
		}
		if rec.Update.Aggregator.ID != uint32(1000+i) {
			t.Errorf("aggregator ts = %d", rec.Update.Aggregator.ID)
		}
		if want := base.Add(time.Duration(i) * time.Minute); !rec.Timestamp.Equal(want) {
			t.Errorf("timestamp = %v, want %v", rec.Timestamp, want)
		}
		if rec.PeerIP != netip.MustParseAddr("10.0.0.1") {
			t.Errorf("peer IP = %v", rec.PeerIP)
		}
	}
}

func TestReaderCleanEOF(t *testing.T) {
	recs, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty stream: %v recs=%d", err, len(recs))
	}
}

func TestReaderTruncatedHeader(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2, 3}))
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

func TestReaderTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteUpdate(time.Unix(0, 0), 1, 2,
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), testUpdate(1)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-4]
	r := NewReader(bytes.NewReader(data))
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

func TestReaderSkipsUnknownTypes(t *testing.T) {
	var buf bytes.Buffer
	// A TABLE_DUMP_V2 (13) record with arbitrary body.
	hdr := make([]byte, 0, 12)
	hdr = binary.BigEndian.AppendUint32(hdr, 1583020800)
	hdr = binary.BigEndian.AppendUint16(hdr, 13)
	hdr = binary.BigEndian.AppendUint16(hdr, 2)
	hdr = binary.BigEndian.AppendUint32(hdr, 4)
	buf.Write(hdr)
	buf.Write([]byte{1, 2, 3, 4})
	// Followed by a normal update record.
	w := NewWriter(&buf)
	if err := w.WriteUpdate(time.Unix(1583020900, 0), 7, 8,
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), testUpdate(9)); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].IsUpdate() || len(recs[0].Raw) != 4 {
		t.Error("unknown record should carry raw body, no update")
	}
	if !recs[1].IsUpdate() {
		t.Error("update record after unknown record lost")
	}
}

func TestReaderRejectsHugeBody(t *testing.T) {
	hdr := make([]byte, 0, 12)
	hdr = binary.BigEndian.AppendUint32(hdr, 0)
	hdr = binary.BigEndian.AppendUint16(hdr, TypeBGP4MP)
	hdr = binary.BigEndian.AppendUint16(hdr, SubtypeMessageAS4)
	hdr = binary.BigEndian.AppendUint32(hdr, maxBody+1)
	r := NewReader(bytes.NewReader(hdr))
	if _, err := r.Next(); !errors.Is(err, ErrBodyTooLong) {
		t.Fatalf("err = %v", err)
	}
}

func TestReaderBadAFI(t *testing.T) {
	body := make([]byte, 0)
	body = binary.BigEndian.AppendUint32(body, 1) // peer AS
	body = binary.BigEndian.AppendUint32(body, 2) // local AS
	body = binary.BigEndian.AppendUint16(body, 0) // ifindex
	body = binary.BigEndian.AppendUint16(body, 99)
	hdr := make([]byte, 0, 12)
	hdr = binary.BigEndian.AppendUint32(hdr, 0)
	hdr = binary.BigEndian.AppendUint16(hdr, TypeBGP4MP)
	hdr = binary.BigEndian.AppendUint16(hdr, SubtypeMessageAS4)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(body)))
	r := NewReader(bytes.NewReader(append(hdr, body...)))
	if _, err := r.Next(); !errors.Is(err, ErrBadAFI) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriterRejectsIPv6Peer(t *testing.T) {
	w := NewWriter(io.Discard)
	err := w.WriteUpdate(time.Unix(0, 0), 1, 2,
		netip.MustParseAddr("2001:db8::1"), netip.MustParseAddr("10.0.0.2"), testUpdate(1))
	if !errors.Is(err, ErrBadAFI) {
		t.Fatalf("err = %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(peer, local uint32, ts uint32, pathRaw []uint16) bool {
		if len(pathRaw) > 32 {
			pathRaw = pathRaw[:32]
		}
		asns := []bgp.ASN{bgp.ASN(peer%100000 + 1)}
		for _, v := range pathRaw {
			asns = append(asns, bgp.ASN(v)+1)
		}
		u := &bgp.Update{
			Origin:     bgp.OriginIGP,
			ASPath:     bgp.NewPath(asns...),
			NextHop:    netip.MustParseAddr("192.0.2.1"),
			NLRI:       []bgp.Prefix{bgp.MustPrefix("203.0.113.0/24")},
			Aggregator: &bgp.Aggregator{AS: asns[len(asns)-1], ID: ts},
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteUpdate(time.Unix(int64(ts), 0), bgp.ASN(peer%1<<31+1), bgp.ASN(local%1<<31+1),
			netip.MustParseAddr("10.1.2.3"), netip.MustParseAddr("10.3.2.1"), u); err != nil {
			return false
		}
		recs, err := ReadAll(&buf)
		if err != nil || len(recs) != 1 || !recs[0].IsUpdate() {
			return false
		}
		return recs[0].Update.ASPath.Equal(u.ASPath) && recs[0].Update.Aggregator.ID == ts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmbeddedNonUpdateKeptRaw(t *testing.T) {
	// Build a BGP4MP record whose embedded message is a KEEPALIVE.
	keep := make([]byte, 19)
	for i := 0; i < 16; i++ {
		keep[i] = 0xff
	}
	binary.BigEndian.PutUint16(keep[16:18], 19)
	keep[18] = byte(bgp.MsgKeepalive)

	body := make([]byte, 0)
	body = binary.BigEndian.AppendUint32(body, 1)
	body = binary.BigEndian.AppendUint32(body, 2)
	body = binary.BigEndian.AppendUint16(body, 0)
	body = binary.BigEndian.AppendUint16(body, AFIIPv4)
	body = append(body, 10, 0, 0, 1, 10, 0, 0, 2)
	body = append(body, keep...)

	hdr := make([]byte, 0, 12)
	hdr = binary.BigEndian.AppendUint32(hdr, 0)
	hdr = binary.BigEndian.AppendUint16(hdr, TypeBGP4MP)
	hdr = binary.BigEndian.AppendUint16(hdr, SubtypeMessageAS4)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(body)))

	r := NewReader(bytes.NewReader(append(hdr, body...)))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.IsUpdate() {
		t.Error("keepalive decoded as update")
	}
	if len(rec.Raw) != len(keep) {
		t.Errorf("raw length %d, want %d", len(rec.Raw), len(keep))
	}
}

func Test2ByteSubtype(t *testing.T) {
	// Hand-build a SubtypeMessage (2-byte ASN) record and decode it.
	codec := bgp.Codec{}
	u := &bgp.Update{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.NewPath(65000, 65001),
		NextHop: netip.MustParseAddr("192.0.2.1"),
		NLRI:    []bgp.Prefix{bgp.MustPrefix("203.0.113.0/24")},
	}
	msg, err := codec.EncodeMessage(u)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 0)
	body = binary.BigEndian.AppendUint16(body, 65000)
	body = binary.BigEndian.AppendUint16(body, 65535)
	body = binary.BigEndian.AppendUint16(body, 0)
	body = binary.BigEndian.AppendUint16(body, AFIIPv4)
	body = append(body, 10, 0, 0, 1, 10, 0, 0, 2)
	body = append(body, msg...)
	hdr := make([]byte, 0, 12)
	hdr = binary.BigEndian.AppendUint32(hdr, 100)
	hdr = binary.BigEndian.AppendUint16(hdr, TypeBGP4MP)
	hdr = binary.BigEndian.AppendUint16(hdr, SubtypeMessage)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(body)))
	r := NewReader(bytes.NewReader(append(hdr, body...)))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.PeerAS != 65000 || !rec.IsUpdate() {
		t.Fatalf("rec = %+v", rec)
	}
	if !rec.Update.ASPath.Equal(u.ASPath) {
		t.Errorf("path = %v", rec.Update.ASPath)
	}
}

func BenchmarkWriteUpdateRecord(b *testing.B) {
	w := NewWriter(io.Discard)
	u := testUpdate(1)
	peer := netip.MustParseAddr("10.0.0.1")
	local := netip.MustParseAddr("10.0.0.2")
	ts := time.Unix(1583020800, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.WriteUpdate(ts, 64500, 64999, peer, local, u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadUpdateRecord(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteUpdate(time.Unix(0, 0), 1, 2,
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), testUpdate(1)); err != nil {
		b.Fatal(err)
	}
	record := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(record))
		if _, err := r.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
