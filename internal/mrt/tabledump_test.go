package mrt

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
	"time"

	"because/internal/bgp"
)

func ribPeers() []Peer {
	return []Peer{
		{BGPID: netip.MustParseAddr("10.0.0.1"), Addr: netip.MustParseAddr("10.0.0.1"), AS: 64500},
		{BGPID: netip.MustParseAddr("10.0.0.2"), Addr: netip.MustParseAddr("10.0.0.2"), AS: 4200000000},
	}
}

func ribAttrs(path ...bgp.ASN) *bgp.Update {
	return &bgp.Update{
		Origin:     bgp.OriginIGP,
		ASPath:     bgp.NewPath(path...),
		NextHop:    netip.MustParseAddr("192.0.2.1"),
		Aggregator: &bgp.Aggregator{AS: path[len(path)-1], ID: 1583020800},
	}
}

func TestRIBRoundTrip(t *testing.T) {
	peers := ribPeers()
	ts := time.Date(2020, 3, 1, 12, 0, 0, 0, time.UTC)
	var buf bytes.Buffer
	w, err := NewRIBWriter(&buf, ts, peers)
	if err != nil {
		t.Fatal(err)
	}
	prefixes := []bgp.Prefix{bgp.MustPrefix("10.1.1.0/24"), bgp.MustPrefix("10.2.0.0/16")}
	for _, p := range prefixes {
		entries := []RIBEntry{
			{Peer: peers[0], OriginatedAt: ts.Add(-time.Hour), Attrs: ribAttrs(64500, 3356, 65010)},
			{Peer: peers[1], OriginatedAt: ts.Add(-2 * time.Hour), Attrs: ribAttrs(4200000000, 65010)},
		}
		if err := w.WritePrefix(p, entries); err != nil {
			t.Fatal(err)
		}
	}

	r := NewRIBReader(&buf)
	var recs []*RIBRecord
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if got := r.Peers(); len(got) != 2 || got[1].AS != 4200000000 {
		t.Fatalf("peer table = %+v", got)
	}
	for i, rec := range recs {
		if rec.Prefix != prefixes[i] {
			t.Errorf("record %d prefix = %v", i, rec.Prefix)
		}
		if rec.Sequence != uint32(i) {
			t.Errorf("record %d sequence = %d", i, rec.Sequence)
		}
		if len(rec.Entries) != 2 {
			t.Fatalf("record %d entries = %d", i, len(rec.Entries))
		}
		e0 := rec.Entries[0]
		if e0.Peer.AS != 64500 {
			t.Errorf("entry peer = %v", e0.Peer.AS)
		}
		if !e0.OriginatedAt.Equal(ts.Add(-time.Hour)) {
			t.Errorf("originated = %v", e0.OriginatedAt)
		}
		if got := bgp.PathKey(e0.Attrs.ASPath.Clean()); got != "64500 3356 65010" {
			t.Errorf("entry path = %q", got)
		}
		if e0.Attrs.Aggregator == nil || e0.Attrs.Aggregator.ID != 1583020800 {
			t.Error("aggregator lost in RIB round trip")
		}
	}
}

func TestRIBWriterValidation(t *testing.T) {
	if _, err := NewRIBWriter(&bytes.Buffer{}, time.Now(), nil); err == nil {
		t.Error("empty peer table accepted")
	}
	ipv6Peer := []Peer{{Addr: netip.MustParseAddr("2001:db8::1"), AS: 1}}
	if _, err := NewRIBWriter(&bytes.Buffer{}, time.Now(), ipv6Peer); err == nil {
		t.Error("IPv6 peer accepted by IPv4 writer")
	}
	w, err := NewRIBWriter(&bytes.Buffer{}, time.Now(), ribPeers())
	if err != nil {
		t.Fatal(err)
	}
	// Unknown peer in entries.
	stranger := Peer{Addr: netip.MustParseAddr("10.9.9.9"), AS: 9}
	err = w.WritePrefix(bgp.MustPrefix("10.1.1.0/24"),
		[]RIBEntry{{Peer: stranger, Attrs: ribAttrs(1)}})
	if err == nil {
		t.Error("unknown peer accepted")
	}
}

func TestRIBReaderRequiresPeerIndex(t *testing.T) {
	// Hand-build a RIB record with no preceding peer table.
	var buf bytes.Buffer
	w, err := NewRIBWriter(&buf, time.Unix(0, 0), ribPeers())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePrefix(bgp.MustPrefix("10.1.1.0/24"),
		[]RIBEntry{{Peer: ribPeers()[0], Attrs: ribAttrs(1)}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Strip the PEER_INDEX_TABLE record (first record) from the stream.
	bodyLen := int(uint32(data[8])<<24 | uint32(data[9])<<16 | uint32(data[10])<<8 | uint32(data[11]))
	stripped := data[12+bodyLen:]
	r := NewRIBReader(bytes.NewReader(stripped))
	if _, err := r.Next(); !errors.Is(err, ErrNoPeerIndex) {
		t.Fatalf("err = %v", err)
	}
}

func TestRIBReaderSkipsForeignRecords(t *testing.T) {
	// A BGP4MP update record interleaved in the stream is skipped.
	var buf bytes.Buffer
	uw := NewWriter(&buf)
	if err := uw.WriteUpdate(time.Unix(10, 0), 1, 2,
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), testUpdate(7)); err != nil {
		t.Fatal(err)
	}
	w, err := NewRIBWriter(&buf, time.Unix(20, 0), ribPeers())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePrefix(bgp.MustPrefix("10.1.1.0/24"),
		[]RIBEntry{{Peer: ribPeers()[0], Attrs: ribAttrs(5)}}); err != nil {
		t.Fatal(err)
	}
	r := NewRIBReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Prefix != bgp.MustPrefix("10.1.1.0/24") {
		t.Errorf("prefix = %v", rec.Prefix)
	}
}

func TestRIBEmptyEntries(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewRIBWriter(&buf, time.Unix(0, 0), ribPeers())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePrefix(bgp.MustPrefix("10.3.0.0/24"), nil); err != nil {
		t.Fatal(err)
	}
	r := NewRIBReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) != 0 {
		t.Errorf("entries = %d", len(rec.Entries))
	}
}
