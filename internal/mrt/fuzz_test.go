package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"because/internal/bgp"
)

// fuzzSnapshot builds a small valid TABLE_DUMP_V2 stream (peer index plus
// two RIB records) to seed the corpus with structurally correct bytes.
func fuzzSnapshot(tb testing.TB) []byte {
	tb.Helper()
	peers := []Peer{
		{BGPID: netip.AddrFrom4([4]byte{192, 0, 2, 1}), Addr: netip.AddrFrom4([4]byte{192, 0, 2, 1}), AS: 64500},
		{BGPID: netip.AddrFrom4([4]byte{192, 0, 2, 2}), Addr: netip.AddrFrom4([4]byte{192, 0, 2, 2}), AS: 64501},
	}
	var buf bytes.Buffer
	w, err := NewRIBWriter(&buf, time.Unix(1583020800, 0).UTC(), peers)
	if err != nil {
		tb.Fatal(err)
	}
	attrs := &bgp.Update{
		NLRI:    []bgp.Prefix{bgp.MustPrefix("10.0.0.0/24")},
		ASPath:  bgp.NewPath(64500, 64999),
		NextHop: netip.AddrFrom4([4]byte{192, 0, 2, 1}),
	}
	for _, p := range []string{"10.0.0.0/24", "10.1.0.0/16"} {
		if err := w.WritePrefix(bgp.MustPrefix(p), []RIBEntry{
			{Peer: peers[0], OriginatedAt: time.Unix(1583020000, 0), Attrs: attrs},
			{Peer: peers[1], OriginatedAt: time.Unix(1583020100, 0), Attrs: attrs},
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// fuzzUpdateDump builds a valid BGP4MP update stream: the RIB reader must
// skip such records cleanly while scanning mixed archives.
func fuzzUpdateDump(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	u := &bgp.Update{
		NLRI:    []bgp.Prefix{bgp.MustPrefix("10.0.0.0/24")},
		ASPath:  bgp.NewPath(64500),
		NextHop: netip.AddrFrom4([4]byte{192, 0, 2, 9}),
	}
	if err := w.WriteUpdate(time.Unix(1583020800, 0), 64500, 64999,
		netip.AddrFrom4([4]byte{192, 0, 2, 9}), netip.AddrFrom4([4]byte{192, 0, 2, 10}), u); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzParseTableDump feeds arbitrary bytes through the TABLE_DUMP_V2 reader
// (which exercises the generic MRT record reader underneath). The reader
// must never panic and must always terminate; successfully decoded records
// must uphold the reader's invariants.
func FuzzParseTableDump(f *testing.F) {
	snap := fuzzSnapshot(f)
	f.Add(snap)
	f.Add(snap[:len(snap)-3]) // truncated mid-record
	mutated := bytes.Clone(snap)
	mutated[14] ^= 0x40 // flip a bit inside the peer table body
	f.Add(mutated)
	f.Add(fuzzUpdateDump(f))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00}, 12)) // empty body, type 0
	f.Fuzz(func(t *testing.T, data []byte) {
		rr := NewRIBReader(bytes.NewReader(data))
		for {
			rec, err := rr.Next()
			if err != nil {
				if err != io.EOF && rec != nil {
					t.Fatal("non-nil record returned alongside an error")
				}
				break
			}
			if !rec.Prefix.Addr().Is4() {
				t.Fatalf("decoded RIB prefix %v is not IPv4", rec.Prefix)
			}
			peers := rr.Peers()
			if len(peers) == 0 {
				t.Fatal("RIB record decoded with an empty peer table")
			}
			for _, e := range rec.Entries {
				if e.Attrs == nil {
					t.Fatal("RIB entry with nil attributes")
				}
			}
		}
	})
}
