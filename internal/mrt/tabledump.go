package mrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"because/internal/bgp"
)

// TABLE_DUMP_V2 record type and subtypes (RFC 6396 § 4.3). Real collector
// archives pair the per-update BGP4MP files with periodic RIB snapshots in
// this format; the simulator's collectors can produce both.
const (
	TypeTableDumpV2 = 13

	SubtypePeerIndexTable = 1
	SubtypeRIBIPv4Unicast = 2
)

// Peer-type flag bits in the PEER_INDEX_TABLE.
const (
	peerFlagIPv6 = 0x01
	peerFlagAS4  = 0x02
)

// ErrNoPeerIndex is returned when a RIB record arrives before the
// PEER_INDEX_TABLE that defines its peer indices.
var ErrNoPeerIndex = errors.New("mrt: RIB record before PEER_INDEX_TABLE")

// Peer is one entry of the PEER_INDEX_TABLE.
type Peer struct {
	BGPID netip.Addr
	Addr  netip.Addr
	AS    bgp.ASN
}

// RIBEntry is one peer's route for a prefix in a RIB snapshot.
type RIBEntry struct {
	Peer Peer
	// OriginatedAt is when the route was received.
	OriginatedAt time.Time
	// Attrs carries the path attributes (ASPath, Aggregator, ...; the
	// NLRI field is unused — the prefix lives on the RIB record).
	Attrs *bgp.Update
}

// RIBRecord is one prefix's RIB snapshot row.
type RIBRecord struct {
	Sequence uint32
	Prefix   bgp.Prefix
	Entries  []RIBEntry
}

// RIBWriter emits a TABLE_DUMP_V2 snapshot: one PEER_INDEX_TABLE followed
// by RIB_IPV4_UNICAST records.
type RIBWriter struct {
	w     io.Writer
	codec bgp.Codec
	peers []Peer
	index map[string]uint16
	seq   uint32
	// wroteIndex guards the "peer table first" ordering.
	wroteIndex bool
	ts         time.Time
}

// NewRIBWriter prepares a snapshot writer with the given peer table; the
// snapshot timestamp ts is stamped on every record. Peer order defines the
// peer indices.
func NewRIBWriter(w io.Writer, ts time.Time, peers []Peer) (*RIBWriter, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("mrt: RIB snapshot needs at least one peer")
	}
	if len(peers) > 0xffff {
		return nil, fmt.Errorf("mrt: too many peers (%d)", len(peers))
	}
	rw := &RIBWriter{
		w:     w,
		codec: bgp.Codec{AS4: true},
		peers: peers,
		index: make(map[string]uint16, len(peers)),
		ts:    ts,
	}
	for i, p := range peers {
		if !p.Addr.Is4() {
			return nil, fmt.Errorf("mrt: peer %d address %v is not IPv4", i, p.Addr)
		}
		rw.index[p.Addr.String()] = uint16(i)
	}
	return rw, nil
}

func (rw *RIBWriter) writeRecord(subtype uint16, body []byte) error {
	hdr := make([]byte, 0, 12)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(rw.ts.Unix()))
	hdr = binary.BigEndian.AppendUint16(hdr, TypeTableDumpV2)
	hdr = binary.BigEndian.AppendUint16(hdr, subtype)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(body)))
	if _, err := rw.w.Write(hdr); err != nil {
		return err
	}
	_, err := rw.w.Write(body)
	return err
}

// writePeerIndex emits the PEER_INDEX_TABLE record.
func (rw *RIBWriter) writePeerIndex() error {
	body := make([]byte, 0, 8+16*len(rw.peers))
	body = append(body, 192, 0, 2, 10)            // collector BGP ID
	body = binary.BigEndian.AppendUint16(body, 0) // view name length (unnamed)
	body = binary.BigEndian.AppendUint16(body, uint16(len(rw.peers)))
	for _, p := range rw.peers {
		body = append(body, peerFlagAS4) // IPv4 peer, 4-byte AS
		id := p.BGPID
		if !id.Is4() {
			id = p.Addr
		}
		id4 := id.As4()
		body = append(body, id4[:]...)
		a4 := p.Addr.As4()
		body = append(body, a4[:]...)
		body = binary.BigEndian.AppendUint32(body, uint32(p.AS))
	}
	rw.wroteIndex = true
	return rw.writeRecord(SubtypePeerIndexTable, body)
}

// WritePrefix emits one RIB_IPV4_UNICAST record: the routes every peer
// currently holds for prefix. Entries whose peer is not in the table are an
// error. The PEER_INDEX_TABLE is emitted automatically before the first
// prefix.
func (rw *RIBWriter) WritePrefix(prefix bgp.Prefix, entries []RIBEntry) error {
	if !rw.wroteIndex {
		if err := rw.writePeerIndex(); err != nil {
			return err
		}
	}
	if !prefix.Addr().Is4() {
		return fmt.Errorf("mrt: prefix %v is not IPv4", prefix)
	}
	if len(entries) > 0xffff {
		return fmt.Errorf("mrt: too many RIB entries (%d)", len(entries))
	}
	body := make([]byte, 0, 16)
	body = binary.BigEndian.AppendUint32(body, rw.seq)
	rw.seq++
	bits := prefix.Bits()
	body = append(body, byte(bits))
	a4 := prefix.Masked().Addr().As4()
	body = append(body, a4[:(bits+7)/8]...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(entries)))
	for _, e := range entries {
		idx, ok := rw.index[e.Peer.Addr.String()]
		if !ok {
			return fmt.Errorf("mrt: RIB entry peer %v not in peer table", e.Peer.Addr)
		}
		attrs, err := rw.codec.EncodeAttributes(e.Attrs)
		if err != nil {
			return fmt.Errorf("mrt: encoding RIB attributes: %w", err)
		}
		body = binary.BigEndian.AppendUint16(body, idx)
		body = binary.BigEndian.AppendUint32(body, uint32(e.OriginatedAt.Unix()))
		body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
		body = append(body, attrs...)
	}
	return rw.writeRecord(SubtypeRIBIPv4Unicast, body)
}

// RIBReader decodes a TABLE_DUMP_V2 snapshot stream.
type RIBReader struct {
	r     *Reader
	codec bgp.Codec
	peers []Peer
}

// NewRIBReader returns a snapshot reader over r.
func NewRIBReader(r io.Reader) *RIBReader {
	return &RIBReader{r: NewReader(r), codec: bgp.Codec{AS4: true}}
}

// Peers returns the peer table (available after the first Next call).
func (rr *RIBReader) Peers() []Peer { return rr.peers }

// Next returns the next RIB record, decoding the peer table transparently.
// It returns io.EOF at end of stream. Non-TABLE_DUMP_V2 records in the
// stream are skipped.
func (rr *RIBReader) Next() (*RIBRecord, error) {
	for {
		rec, err := rr.r.Next()
		if err != nil {
			return nil, err
		}
		if rec.Type != TypeTableDumpV2 {
			continue
		}
		switch rec.Subtype {
		case SubtypePeerIndexTable:
			if err := rr.decodePeerIndex(rec.Raw); err != nil {
				return nil, err
			}
		case SubtypeRIBIPv4Unicast:
			if rr.peers == nil {
				return nil, ErrNoPeerIndex
			}
			return rr.decodeRIB(rec.Raw)
		default:
			// Other subtypes (IPv6, multicast) are skipped.
		}
	}
}

func (rr *RIBReader) decodePeerIndex(body []byte) error {
	if len(body) < 8 {
		return ErrTruncated
	}
	viewLen := int(binary.BigEndian.Uint16(body[4:6]))
	if len(body) < 8+viewLen {
		return ErrTruncated
	}
	body = body[6+viewLen:]
	count := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	peers := make([]Peer, 0, count)
	for i := 0; i < count; i++ {
		if len(body) < 1 {
			return ErrTruncated
		}
		flags := body[0]
		body = body[1:]
		addrLen := 4
		if flags&peerFlagIPv6 != 0 {
			addrLen = 16
		}
		asLen := 2
		if flags&peerFlagAS4 != 0 {
			asLen = 4
		}
		need := 4 + addrLen + asLen
		if len(body) < need {
			return ErrTruncated
		}
		var p Peer
		p.BGPID = netip.AddrFrom4([4]byte(body[0:4]))
		if addrLen == 4 {
			p.Addr = netip.AddrFrom4([4]byte(body[4:8]))
		} else {
			p.Addr = netip.AddrFrom16([16]byte(body[4:20]))
		}
		if asLen == 4 {
			p.AS = bgp.ASN(binary.BigEndian.Uint32(body[4+addrLen : 8+addrLen]))
		} else {
			p.AS = bgp.ASN(binary.BigEndian.Uint16(body[4+addrLen : 6+addrLen]))
		}
		body = body[need:]
		peers = append(peers, p)
	}
	rr.peers = peers
	return nil
}

func (rr *RIBReader) decodeRIB(body []byte) (*RIBRecord, error) {
	if len(body) < 5 {
		return nil, ErrTruncated
	}
	rec := &RIBRecord{Sequence: binary.BigEndian.Uint32(body[:4])}
	bits := int(body[4])
	if bits > 32 {
		return nil, fmt.Errorf("mrt: RIB prefix length %d", bits)
	}
	nb := (bits + 7) / 8
	if len(body) < 5+nb+2 {
		return nil, ErrTruncated
	}
	var a4 [4]byte
	copy(a4[:], body[5:5+nb])
	prefix, err := netip.AddrFrom4(a4).Prefix(bits)
	if err != nil {
		return nil, fmt.Errorf("mrt: RIB prefix: %w", err)
	}
	rec.Prefix = prefix
	body = body[5+nb:]
	count := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	for i := 0; i < count; i++ {
		if len(body) < 8 {
			return nil, ErrTruncated
		}
		idx := int(binary.BigEndian.Uint16(body[:2]))
		if idx >= len(rr.peers) {
			return nil, fmt.Errorf("mrt: RIB entry peer index %d out of range", idx)
		}
		orig := time.Unix(int64(binary.BigEndian.Uint32(body[2:6])), 0).UTC()
		alen := int(binary.BigEndian.Uint16(body[6:8]))
		if len(body) < 8+alen {
			return nil, ErrTruncated
		}
		attrs := &bgp.Update{}
		if err := rr.codec.DecodeAttributes(body[8:8+alen], attrs); err != nil {
			return nil, fmt.Errorf("mrt: RIB entry attributes: %w", err)
		}
		rec.Entries = append(rec.Entries, RIBEntry{
			Peer:         rr.peers[idx],
			OriginatedAt: orig,
			Attrs:        attrs,
		})
		body = body[8+alen:]
	}
	return rec, nil
}
