// Package mrt implements the MRT export format (RFC 6396) used by the
// route collector projects the paper consumes (RIPE RIS, RouteViews,
// Isolario). The simulator's collectors archive BGP4MP_MESSAGE_AS4 records,
// and the labeling stage reads them back, so the full measurement path runs
// through the same byte format as a real study.
//
// Only the BGP4MP message subtypes needed by the pipeline are implemented;
// unknown record types are surfaced with their raw body so readers can skip
// them, mirroring how BGP dump tooling behaves on mixed archives.
package mrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"because/internal/bgp"
)

// MRT record types (RFC 6396 § 4).
const (
	TypeBGP4MP   = 16
	TypeBGP4MPET = 17
)

// BGP4MP subtypes (RFC 6396 § 4.4).
const (
	SubtypeStateChange    = 0
	SubtypeMessage        = 1
	SubtypeMessageAS4     = 4
	SubtypeStateChangeAS4 = 5
)

// AFI values used in BGP4MP headers.
const (
	AFIIPv4 = 1
	AFIIPv6 = 2
)

// Errors returned by the reader.
var (
	ErrTruncated   = errors.New("mrt: truncated record")
	ErrBadAFI      = errors.New("mrt: unsupported address family")
	ErrNotBGP4MP   = errors.New("mrt: record is not a BGP4MP message")
	ErrBodyTooLong = errors.New("mrt: record body exceeds sane limit")
)

// maxBody bounds record allocation when reading untrusted dumps.
const maxBody = 1 << 20

// Record is one decoded MRT record. For BGP4MP message records the BGP
// update is decoded into Update; for any other type/subtype the raw body is
// retained and Update is nil.
type Record struct {
	Timestamp time.Time
	Type      uint16
	Subtype   uint16

	// BGP4MP message fields.
	PeerAS  bgp.ASN
	LocalAS bgp.ASN
	PeerIP  netip.Addr
	LocalIP netip.Addr
	Update  *bgp.Update

	// Raw holds the undecoded body for record types the package does not
	// interpret.
	Raw []byte
}

// IsUpdate reports whether the record carries a decoded BGP UPDATE.
func (r *Record) IsUpdate() bool { return r.Update != nil }

// Writer serialises MRT records to an io.Writer.
type Writer struct {
	w io.Writer
	// codec used for the embedded BGP messages (AS4 on for MESSAGE_AS4).
	codec bgp.Codec
}

// NewWriter returns a Writer emitting BGP4MP_MESSAGE_AS4 records.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, codec: bgp.Codec{AS4: true}}
}

// WriteUpdate writes one BGP4MP_MESSAGE_AS4 record containing u as received
// by the collector from peerAS at ts.
func (w *Writer) WriteUpdate(ts time.Time, peerAS, localAS bgp.ASN, peerIP, localIP netip.Addr, u *bgp.Update) error {
	msg, err := w.codec.EncodeMessage(u)
	if err != nil {
		return fmt.Errorf("mrt: encoding BGP message: %w", err)
	}
	if !peerIP.Is4() || !localIP.Is4() {
		return ErrBadAFI
	}
	body := make([]byte, 0, 20+len(msg))
	body = binary.BigEndian.AppendUint32(body, uint32(peerAS))
	body = binary.BigEndian.AppendUint32(body, uint32(localAS))
	body = binary.BigEndian.AppendUint16(body, 0) // interface index
	body = binary.BigEndian.AppendUint16(body, AFIIPv4)
	p4 := peerIP.As4()
	l4 := localIP.As4()
	body = append(body, p4[:]...)
	body = append(body, l4[:]...)
	body = append(body, msg...)

	hdr := make([]byte, 0, 12)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(ts.Unix()))
	hdr = binary.BigEndian.AppendUint16(hdr, TypeBGP4MP)
	hdr = binary.BigEndian.AppendUint16(hdr, SubtypeMessageAS4)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(body)))
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	_, err = w.w.Write(body)
	return err
}

// Reader decodes MRT records from an io.Reader.
type Reader struct {
	r io.Reader
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads the next record. It returns io.EOF cleanly at end of stream and
// ErrTruncated if the stream ends mid-record. Records of unknown type are
// returned with Raw set and Update nil.
func (r *Reader) Next() (*Record, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, ErrTruncated
	}
	rec := &Record{
		Timestamp: time.Unix(int64(binary.BigEndian.Uint32(hdr[0:4])), 0).UTC(),
		Type:      binary.BigEndian.Uint16(hdr[4:6]),
		Subtype:   binary.BigEndian.Uint16(hdr[6:8]),
	}
	blen := binary.BigEndian.Uint32(hdr[8:12])
	if blen > maxBody {
		return nil, ErrBodyTooLong
	}
	body := make([]byte, blen)
	if _, err := io.ReadFull(r.r, body); err != nil {
		return nil, ErrTruncated
	}
	if rec.Type != TypeBGP4MP && rec.Type != TypeBGP4MPET {
		rec.Raw = body
		return rec, nil
	}
	if rec.Subtype != SubtypeMessage && rec.Subtype != SubtypeMessageAS4 {
		rec.Raw = body
		return rec, nil
	}
	if err := r.decodeBGP4MP(rec, body); err != nil {
		return nil, err
	}
	return rec, nil
}

func (r *Reader) decodeBGP4MP(rec *Record, body []byte) error {
	as4 := rec.Subtype == SubtypeMessageAS4
	asLen := 2
	if as4 {
		asLen = 4
	}
	need := 2*asLen + 4
	if len(body) < need {
		return ErrTruncated
	}
	if as4 {
		rec.PeerAS = bgp.ASN(binary.BigEndian.Uint32(body[0:4]))
		rec.LocalAS = bgp.ASN(binary.BigEndian.Uint32(body[4:8]))
	} else {
		rec.PeerAS = bgp.ASN(binary.BigEndian.Uint16(body[0:2]))
		rec.LocalAS = bgp.ASN(binary.BigEndian.Uint16(body[2:4]))
	}
	afi := binary.BigEndian.Uint16(body[2*asLen+2 : 2*asLen+4])
	body = body[need:]
	var addrLen int
	switch afi {
	case AFIIPv4:
		addrLen = 4
	case AFIIPv6:
		addrLen = 16
	default:
		return fmt.Errorf("%w: AFI %d", ErrBadAFI, afi)
	}
	if len(body) < 2*addrLen {
		return ErrTruncated
	}
	if afi == AFIIPv4 {
		rec.PeerIP = netip.AddrFrom4([4]byte(body[0:4]))
		rec.LocalIP = netip.AddrFrom4([4]byte(body[4:8]))
	} else {
		rec.PeerIP = netip.AddrFrom16([16]byte(body[0:16]))
		rec.LocalIP = netip.AddrFrom16([16]byte(body[16:32]))
	}
	body = body[2*addrLen:]
	codec := bgp.Codec{AS4: as4}
	u, _, err := codec.DecodeMessage(body)
	if err != nil {
		if errors.Is(err, bgp.ErrNotUpdate) {
			// Keepalives etc. inside BGP4MP records: keep raw, no update.
			rec.Raw = body
			return nil
		}
		return fmt.Errorf("mrt: embedded BGP message: %w", err)
	}
	rec.Update = u
	return nil
}

// ReadAll drains the reader, returning every record until EOF.
func ReadAll(r io.Reader) ([]*Record, error) {
	mr := NewReader(r)
	var out []*Record
	for {
		rec, err := mr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
