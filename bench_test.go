// Benchmarks regenerating every table and figure of the paper, plus the
// ablation benches for the design choices called out in DESIGN.md. Each
// Benchmark{Fig,Tab}* target re-computes the corresponding artifact; the
// shared measurement campaigns are built once per process (they are the
// expensive part and identical across iterations by determinism).
//
// Run everything:
//
//	go test -bench=. -benchmem
package because_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"because"
	"because/internal/beacon"
	"because/internal/bgp"
	"because/internal/core"
	"because/internal/experiment"
	"because/internal/label"
	"because/internal/rfd"
	"because/internal/stats"
)

var (
	benchOnce  sync.Once
	benchSuite *experiment.Suite
	benchErr   error
)

// suite returns the shared bench scenario (small scale so the full bench
// run stays under a minute; cmd/experiments regenerates the paper-scale
// numbers).
func suite(b *testing.B) *experiment.Suite {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiment.DefaultScenario()
		cfg.Topology.Transit = 40
		cfg.Topology.Stubs = 90
		cfg.Sites = 5
		cfg.VPsPerProject = 6
		cfg.RFDShare = 0.7
		cfg.CustomerOnlyDampers = 1
		benchSuite, benchErr = experiment.NewSuite(cfg, 2)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

func benchRun(b *testing.B, iv time.Duration) *experiment.Run {
	b.Helper()
	run, err := suite(b).IntervalRun(iv)
	if err != nil {
		b.Fatal(err)
	}
	return run
}

func benchInference(b *testing.B, iv time.Duration) (*core.Result, *core.Dataset) {
	b.Helper()
	res, ds, err := suite(b).Inference(iv)
	if err != nil {
		b.Fatal(err)
	}
	return res, ds
}

// ---- Figure / table benches ----------------------------------------------

func BenchmarkFig2PenaltyTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig2PenaltyTrace(rfd.Cisco, time.Minute, time.Hour, 3*time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Signature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig5Signature()
		if err != nil {
			b.Fatal(err)
		}
		if !res.RFDLabeled {
			b.Fatal("signature lost")
		}
	}
}

func BenchmarkFig6LinkSimilarity(b *testing.B) {
	run := benchRun(b, time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := experiment.Fig6LinkSimilarity(run); res.TotalLinks == 0 {
			b.Fatal("no links")
		}
	}
}

func BenchmarkFig7ProjectOverlap(b *testing.B) {
	run := benchRun(b, time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := experiment.Fig7ProjectOverlap(run); res.Union == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkFig8Propagation(b *testing.B) {
	run := benchRun(b, time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := experiment.Fig8Propagation(run); res.Samples == 0 {
			b.Fatal("no samples")
		}
	}
}

func BenchmarkFig9Marginals(b *testing.B) {
	res, ds := benchInference(b, time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fig := experiment.Fig9Marginals(res, ds); len(fig.Pictures) == 0 {
			b.Fatal("no archetypes")
		}
	}
}

func BenchmarkFig10BurstHistogram(b *testing.B) {
	run := benchRun(b, time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig10BurstHistogram(run); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Scatter(b *testing.B) {
	res, _ := benchInference(b, time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fig := experiment.Fig11Scatter(res); len(fig.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig12IntervalSweep(b *testing.B) {
	s := suite(b)
	ivs := []time.Duration{time.Minute, 10 * time.Minute}
	// Warm both campaigns and inferences outside the timer.
	for _, iv := range ivs {
		if _, _, err := s.Inference(iv); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig12IntervalSweep(s, ivs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13RDeltaCDF(b *testing.B) {
	s := suite(b)
	ivs := []time.Duration{time.Minute}
	if _, err := s.IntervalRun(time.Minute); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig13RDeltaCDF(s, ivs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTab2Categories(b *testing.B) {
	res, _ := benchInference(b, time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := experiment.Tab2Categories(res); tab.Total == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTab3Divergence(b *testing.B) {
	run := benchRun(b, time.Minute)
	res, _ := benchInference(b, time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := experiment.Tab3Divergence(run, res); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTab4PrecisionRecall(b *testing.B) {
	s := suite(b)
	if _, _, err := s.Inference(time.Minute); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Tab4PrecisionRecall(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPilot2019 regenerates the August 2019 pilot (15/30/60-minute
// intervals; only tightened-legacy configurations trigger).
func BenchmarkPilot2019(b *testing.B) {
	cfg := experiment.DefaultScenario()
	cfg.Topology.Transit = 40
	cfg.Topology.Stubs = 90
	cfg.Sites = 4
	cfg.VPsPerProject = 5
	cfg.RFDShare = 0.7
	cfg.AggressiveShare = 0.5
	for i := 0; i < b.N; i++ {
		res, err := experiment.Pilot2019(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkCampaignSimulation measures the full beacon-to-labels pipeline:
// a one-pair 1-minute campaign over the bench topology.
func BenchmarkCampaignSimulation(b *testing.B) {
	s := suite(b).Scenario()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := s.RunCampaign(experiment.IntervalCampaign(time.Minute, 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(run.Measurements) == 0 {
			b.Fatal("no measurements")
		}
	}
}

// ---- Ablation benches ------------------------------------------------------

// benchDataset builds a mid-size planted tomography dataset directly.
func benchDataset(b *testing.B) *core.Dataset {
	b.Helper()
	rng := stats.NewRNG(9)
	dampers := map[bgp.ASN]bool{17: true, 42: true}
	var obs []core.PathObs
	for i := 0; i < 300; i++ {
		n := 3 + rng.Intn(4)
		path := make([]bgp.ASN, 0, n)
		seen := map[bgp.ASN]bool{}
		positive := false
		for len(path) < n {
			a := bgp.ASN(rng.Intn(60) + 1)
			if seen[a] {
				continue
			}
			seen[a] = true
			path = append(path, a)
			if dampers[a] {
				positive = true
			}
		}
		obs = append(obs, core.PathObs{ASNs: path, Positive: positive})
	}
	ds, err := core.NewDataset(obs)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkAblationSamplers compares the two MCMC engines at equal sample
// counts: MH is cheap per sweep but mixes coordinate-wise, HMC pays for
// gradients but moves all coordinates jointly.
func BenchmarkAblationSamplers(b *testing.B) {
	ds := benchDataset(b)
	b.Run("mh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := core.RunMH(ds, core.SparsePrior, core.MHConfig{Sweeps: 300, BurnIn: 100}, stats.NewRNG(uint64(i)))
			if err != nil {
				b.Fatal(err)
			}
			_ = c.AcceptanceRate()
		}
	})
	b.Run("hmc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := core.RunHMC(ds, core.SparsePrior, core.HMCConfig{Iterations: 300, BurnIn: 100}, stats.NewRNG(uint64(i)))
			if err != nil {
				b.Fatal(err)
			}
			_ = c.AcceptanceRate()
		}
	})
	// Report mixing quality: effective samples per retained sample.
	b.Run("ess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mh, err := core.RunMH(ds, core.SparsePrior, core.MHConfig{Sweeps: 300, BurnIn: 100}, stats.NewRNG(1))
			if err != nil {
				b.Fatal(err)
			}
			hmc, err := core.RunHMC(ds, core.SparsePrior, core.HMCConfig{Iterations: 300, BurnIn: 100}, stats.NewRNG(2))
			if err != nil {
				b.Fatal(err)
			}
			i17, _ := ds.NodeIndex(17)
			b.ReportMetric(core.ESS(mh.Marginal(i17))/float64(mh.Len()), "mh-ess/sample")
			b.ReportMetric(core.ESS(hmc.Marginal(i17))/float64(hmc.Len()), "hmc-ess/sample")
		}
	})
}

// BenchmarkAblationPriors verifies the paper's claim that with BGP-scale
// data the prior barely matters: the flagged set is identical across
// priors, and the bench reports the damper's posterior mean under each.
func BenchmarkAblationPriors(b *testing.B) {
	ds := benchDataset(b)
	priors := map[string]core.Prior{
		"sparse":   core.SparsePrior,
		"uniform":  core.UniformPrior,
		"centered": core.SymmetricPrior,
	}
	for name, prior := range priors {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := core.RunMH(ds, prior, core.MHConfig{Sweeps: 400, BurnIn: 100}, stats.NewRNG(3))
				if err != nil {
					b.Fatal(err)
				}
				i17, _ := ds.NodeIndex(17)
				b.ReportMetric(stats.Mean(c.Marginal(i17)), "damper-mean")
			}
		})
	}
}

// BenchmarkAblationLogSpace contrasts the log-space likelihood against the
// naive linear-space translation of Eq. 5 — which underflows to exactly 0
// on realistic datasets, destroying the acceptance ratios MH depends on.
func BenchmarkAblationLogSpace(b *testing.B) {
	ds := benchDataset(b)
	// A probability vector deep in the tail: each negative path contributes
	// ~1e-4 in linear space, and a few hundred of them multiply straight
	// past float64's smallest normal.
	p := make([]float64, ds.NumNodes())
	for i := range p {
		p[i] = 0.9
	}
	b.Run("log", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if v := core.LogLik(ds, p); v > 0 {
				b.Fatal("positive log likelihood")
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		underflows := 0
		for i := 0; i < b.N; i++ {
			if core.LinearLik(ds, p) == 0 {
				underflows++
			}
		}
		b.ReportMetric(float64(underflows)/float64(b.N), "underflow-rate")
	})
}

// BenchmarkAblationLabeling sweeps the two labeling knobs the paper fixes
// by argument (minimum r-delta 5 min; >=90% of pairs) and reports how the
// number of RFD-labeled paths responds.
func BenchmarkAblationLabeling(b *testing.B) {
	run := benchRun(b, time.Minute)
	configs := map[string]label.Config{
		"paper":        {},
		"rdelta-2m":    {MinRDelta: 2 * time.Minute},
		"rdelta-10m":   {MinRDelta: 10 * time.Minute},
		"majority-50%": {RFDShare: 0.5},
	}
	for name, cfg := range configs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ms := label.LabelPaths(run.Entries, run.Schedules, cfg)
				rfdPaths := 0
				for _, m := range ms {
					if m.RFD {
						rfdPaths++
					}
				}
				b.ReportMetric(float64(rfdPaths), "rfd-paths")
			}
		})
	}
}

// pinpointDataset builds the AS-701 scenario: an inconsistent damper whose
// overall mean stays low (many undamped paths) but who is the only
// plausible cause on several damped paths.
func pinpointDataset(b *testing.B) *core.Dataset {
	b.Helper()
	var obs []core.PathObs
	for i := 0; i < 12; i++ {
		obs = append(obs, core.PathObs{ASNs: []bgp.ASN{bgp.ASN(100 + i), 701, bgp.ASN(200 + i)}, Positive: false})
	}
	for i := 0; i < 6; i++ {
		comp := bgp.ASN(300 + i)
		obs = append(obs, core.PathObs{ASNs: []bgp.ASN{comp, 701, bgp.ASN(400 + i)}, Positive: true})
		for k := 0; k < 15; k++ {
			obs = append(obs, core.PathObs{ASNs: []bgp.ASN{comp, bgp.ASN(500 + 20*i + k)}, Positive: false})
			obs = append(obs, core.PathObs{ASNs: []bgp.ASN{bgp.ASN(400 + i), bgp.ASN(1000 + 20*i + k)}, Positive: false})
		}
	}
	ds, err := core.NewDataset(obs)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkAblationPinpoint sweeps the Eq. 8 vote threshold on the AS-701
// scenario and reports how many ASes the inconsistency pass upgrades: too
// low over-flags, too high misses the inconsistent damper.
func BenchmarkAblationPinpoint(b *testing.B) {
	ds := pinpointDataset(b)
	for _, threshold := range []float64{0.6, 0.8, 0.95} {
		threshold := threshold
		b.Run(formatThreshold(threshold), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Infer(ds, core.Config{
					Seed:              7,
					MH:                core.MHConfig{Sweeps: 400, BurnIn: 100},
					DisableHMC:        true,
					PinpointThreshold: threshold,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(res.Pinpointed)), "pinpointed")
			}
		})
	}
}

func formatThreshold(t float64) string {
	switch t {
	case 0.6:
		return "0.6"
	case 0.8:
		return "0.8-paper"
	default:
		return "0.95"
	}
}

// BenchmarkPublicInfer measures the end-user API on the quickstart dataset.
func BenchmarkPublicInfer(b *testing.B) {
	var obs []because.PathObservation
	paths := [][]because.ASN{
		{1, 7, 3}, {2, 7, 4}, {5, 7, 6}, {1, 7, 6}, {8, 7, 3},
		{1, 9, 3}, {2, 9, 4}, {5, 9, 6}, {8, 9, 10},
		{1, 2, 3}, {4, 5, 6}, {8, 10, 11}, {11, 12, 1}, {2, 4, 6},
	}
	for _, p := range paths {
		positive := false
		for _, a := range p {
			if a == 7 {
				positive = true
			}
		}
		obs = append(obs, because.PathObservation{Path: p, ShowsProperty: positive})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := because.Infer(obs, because.Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Flagged()) == 0 {
			b.Fatal("damper lost")
		}
	}
}

// BenchmarkBeaconExpansion measures schedule expansion (pure computation).
func BenchmarkBeaconExpansion(b *testing.B) {
	sched := beacon.Schedule{
		Site: 65000, Prefix: bgp.MustPrefix("10.1.1.0/24"),
		UpdateInterval: time.Minute, BurstLen: 2 * time.Hour, BreakLen: 6 * time.Hour,
		Pairs: 8, Start: experiment.Start,
	}
	for i := 0; i < b.N; i++ {
		evs, err := sched.Events()
		if err != nil {
			b.Fatal(err)
		}
		if len(evs) == 0 {
			b.Fatal("no events")
		}
	}
}

// BenchmarkInfer measures the parallel multi-chain engine: 4 MH chains over
// the 1-minute campaign dataset, at 1 worker (sequential baseline) and at 4
// workers. On a 4+ core machine the workers=4 case should run ≥2x faster;
// by the engine's determinism guarantee both produce bit-identical results,
// so the speedup is free. (On fewer cores the pool degrades gracefully to
// the available parallelism.)
func BenchmarkInfer(b *testing.B) {
	run := benchRun(b, time.Minute)
	ds, err := run.Dataset()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("chains=4/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := core.Config{
					Seed:       42,
					Chains:     4,
					Workers:    workers,
					DisableHMC: true,
					MH:         core.MHConfig{Sweeps: 400, BurnIn: 100},
				}
				if _, err := core.Infer(ds, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
