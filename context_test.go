package because

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"
)

func fastOpts(seed uint64) Options {
	return Options{Seed: seed, MHSweeps: 120, MHBurnIn: 30, HMCIterations: 60, HMCBurnIn: 15}
}

func TestInferContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := InferContext(ctx, plantedObs(), fastOpts(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
}

func TestInferContextDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := InferContext(ctx, plantedObs(), fastOpts(1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestInferContextMidRunCancelNoLeak cancels from inside the progress
// stream — deterministically mid-sampling — and then asserts both that
// ctx.Err() comes back promptly and that no sampler goroutines outlive the
// call.
func TestInferContextMidRunCancelNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := fastOpts(2)
	opts.Chains = 3
	opts.Workers = 2
	opts.ProgressEvery = 10
	opts.OnProgress = func(ProgressEvent) { cancel() }
	start := time.Now()
	res, err := InferContext(ctx, plantedObs(), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	// "Promptly": a full run at these settings takes far longer than one
	// sweep; the generous bound only guards against ignoring cancellation.
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation took %v", el)
	}
	// All chain goroutines were already joined by pool.Wait before
	// InferContext returned; allow a little scheduler settling anyway.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInferContextCompletedRunBitIdentical is the determinism half of the
// cancellation contract: running under a live context must not perturb a
// single bit of the result, because the per-sweep ctx check never touches
// the RNG.
func TestInferContextCompletedRunBitIdentical(t *testing.T) {
	opts := fastOpts(7)
	opts.Chains = 2
	want, err := Infer(plantedObs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := InferContext(ctx, plantedObs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Reports) != len(got.Reports) {
		t.Fatalf("report counts differ: %d vs %d", len(want.Reports), len(got.Reports))
	}
	for i := range want.Reports {
		a, b := want.Reports[i], got.Reports[i]
		for _, f := range [][2]float64{
			{a.Mean, b.Mean}, {a.CredibleLow, b.CredibleLow}, {a.CredibleHigh, b.CredibleHigh},
			{a.Certainty, b.Certainty}, {a.RHat, b.RHat},
		} {
			if math.Float64bits(f[0]) != math.Float64bits(f[1]) {
				t.Fatalf("AS %d: %v != %v bit-for-bit", a.AS, f[0], f[1])
			}
		}
		if a.Category != b.Category || a.Pinpointed != b.Pinpointed {
			t.Fatalf("AS %d: categorical fields differ: %+v vs %+v", a.AS, a, b)
		}
	}
	if math.Float64bits(want.MHAcceptance) != math.Float64bits(got.MHAcceptance) ||
		math.Float64bits(want.HMCAcceptance) != math.Float64bits(got.HMCAcceptance) ||
		want.HMCDivergences != got.HMCDivergences {
		t.Fatal("sampler diagnostics differ between Infer and InferContext")
	}
}

func TestTypedErrors(t *testing.T) {
	if _, err := Infer(nil, Options{}); !errors.Is(err, ErrNoObservations) {
		t.Errorf("empty observations: err = %v, want ErrNoObservations", err)
	}
	cases := []struct {
		name  string
		obs   []PathObservation
		opts  Options
		field string
	}{
		{"negative sweeps", plantedObs(), Options{MHSweeps: -1}, "mh_sweeps"},
		{"bad prior", plantedObs(), Options{Prior: Prior{Alpha: -1, Beta: 1}}, "prior"},
		{"bad miss rate", plantedObs(), Options{MissRate: 1}, "miss_rate"},
		{"bad hdpi mass", plantedObs(), Options{HDPIMass: 2}, "hdpi_mass"},
		{"empty path", []PathObservation{{Path: []ASN{1}}, {}}, Options{}, "observations[1].path"},
		{"negative weight", []PathObservation{{Path: []ASN{1, 2}, Weight: -1}}, Options{}, "observations[0].weight"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Infer(tc.obs, tc.opts)
			if !errors.Is(err, ErrInvalidOptions) {
				t.Fatalf("err = %v, want ErrInvalidOptions class", err)
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("err = %v, want *ValidationError", err)
			}
			if ve.Field != tc.field {
				t.Errorf("Field = %q, want %q", ve.Field, tc.field)
			}
		})
	}
}

// TestProgressCallbacks checks the unified OnProgress surface and the
// deprecated flattened Progress adapter both receive the sampler stream.
func TestProgressCallbacks(t *testing.T) {
	var events []ProgressEvent
	var legacy int
	opts := Options{Seed: 3, DisableHMC: true, MHSweeps: 100, MHBurnIn: 20, ProgressEvery: 25}
	opts.OnProgress = func(ev ProgressEvent) { events = append(events, ev) }
	opts.Progress = func(stage string, chain, done, total int, acceptance float64) { legacy++ }
	if _, err := Infer(plantedObs(), opts); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("OnProgress never fired")
	}
	if legacy != len(events) {
		t.Errorf("legacy callback fired %d times, unified %d — the adapter must mirror every event", legacy, len(events))
	}
	last := events[len(events)-1]
	if last.Stage != "mh" || last.Done != last.Total {
		t.Errorf("final event = %+v, want completed mh stage", last)
	}
	if r := last.AcceptanceRate(); r <= 0 || r > 1 {
		t.Errorf("acceptance rate = %g", r)
	}
	if (ProgressEvent{}).AcceptanceRate() != 0 {
		t.Error("zero-proposal acceptance rate not 0")
	}
}

func TestSchemaVersionInJSON(t *testing.T) {
	res, err := Infer(plantedObs(), Options{Seed: 4, DisableHMC: true, MHSweeps: 100, MHBurnIn: 20})
	if err != nil {
		t.Fatal(err)
	}
	repJSON, err := json.Marshal(res.Reports[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(repJSON, []byte(`"schema_version":1`)) {
		t.Errorf("report JSON missing schema_version: %s", repJSON)
	}
	resJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		SchemaVersion int               `json:"schema_version"`
		Reports       []json.RawMessage `json:"reports"`
	}
	if err := json.Unmarshal(resJSON, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != SchemaVersion {
		t.Errorf("result schema_version = %d, want %d", doc.SchemaVersion, SchemaVersion)
	}
	if len(doc.Reports) != len(res.Reports) {
		t.Errorf("result JSON carries %d reports, want %d", len(doc.Reports), len(res.Reports))
	}
	empty := &Result{}
	emptyJSON, err := json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(emptyJSON, []byte(`"reports":[]`)) {
		t.Errorf("empty result reports not [], got %s", emptyJSON)
	}
}
