#!/bin/sh
# bench_trajectory.sh — record the per-PR benchmark trajectory.
#
# Runs the headline benchmarks (BenchmarkInfer: the parallel multi-chain
# sampling engine; BenchmarkPublicInfer: the full public API path;
# BenchmarkLint: a whole-module becauselint pass; the //lint:hotpath
# sampler and observation-model kernels, which must hold zero allocs/op)
# and emits a
# machine-readable JSON document — benchmark name, ns/op, B/op,
# allocs/op, plus the commit the numbers were taken at — so successive
# PRs leave comparable perf data points in the repo.
#
# Output goes to BENCH_PR10.json (override with BENCH_OUT). BENCHTIME
# tunes -benchtime; the default 1x runs one timed iteration per
# benchmark — enough for the coarse trajectory and quick in CI. Use e.g.
# BENCHTIME=2s for stabler numbers. Needs only sh + the Go toolchain.
set -eu

cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_PR10.json}
BENCHTIME=${BENCHTIME:-1x}

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "bench-trajectory: root benchmarks (benchtime $BENCHTIME)"
go test -run '^$' -bench '^(BenchmarkInfer|BenchmarkPublicInfer)$' \
    -benchmem -benchtime "$BENCHTIME" . | tee -a "$RAW"
echo "bench-trajectory: lint benchmark"
go test -run '^$' -bench '^BenchmarkLint$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/lint | tee -a "$RAW"
echo "bench-trajectory: hotpath kernels"
go test -run '^$' -bench '^(BenchmarkMHSweep|BenchmarkHMCLeapfrog)$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/core | tee -a "$RAW"
go test -run '^$' -bench '^(BenchmarkPermInto|BenchmarkTruncNormalSample)$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/stats | tee -a "$RAW"
echo "bench-trajectory: churn observation-model kernels"
go test -run '^$' -bench '^(BenchmarkChurnDeltaApply|BenchmarkChurnGrad)$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/churn | tee -a "$RAW"

COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
GOVER=$(go env GOVERSION)

# Each result line looks like
#   BenchmarkInfer/chains=4/workers=1-8   3   412345678 ns/op   96 B/op   2 allocs/op
# The -N GOMAXPROCS suffix is stripped so names compare across machines.
awk -v commit="$COMMIT" -v gover="$GOVER" -v benchtime="$BENCHTIME" '
/^Benchmark/ && /ns\/op/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = "0"; allocs = "0"
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    row = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                  name, ns, bytes, allocs)
    rows = rows (rows == "" ? "" : ",\n") row
}
END {
    printf "{\n"
    printf "  \"schema_version\": 1,\n"
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n%s\n  ]\n", rows
    printf "}\n"
}' "$RAW" >"$OUT"

echo "bench-trajectory: wrote $OUT"
