#!/bin/sh
# bench_compare.sh — diff the two most recent BENCH_*.json trajectory
# documents (see bench_trajectory.sh for the format) and warn about any
# benchmark whose ns/op or allocs/op regressed by more than 20%.
#
# Advisory only: always exits 0, so CI stays green — the warnings land
# in the job log (and as GitHub annotations via the ::warning:: prefix)
# for a human to judge. Needs only POSIX sh + awk.
set -eu

cd "$(dirname "$0")/.."

# Newest two trajectory documents by PR number (version sort handles
# BENCH_PR10.json after BENCH_PR9.json).
FILES=$(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -n 2)
set -- $FILES
if [ $# -lt 2 ]; then
    echo "bench-compare: fewer than two BENCH_*.json documents, nothing to compare"
    exit 0
fi
OLD=$1
NEW=$2
echo "bench-compare: $OLD -> $NEW (threshold: 20% on ns/op and allocs/op)"

awk -v oldfile="$OLD" '
# Pull one numeric or string field out of a single-line benchmark row.
function val(line, key,    rest) {
    rest = line
    if (!sub(".*\"" key "\": *", "", rest)) return ""
    sub(/[,}].*/, "", rest)
    gsub(/"/, "", rest)
    return rest
}
FNR == NR {
    if ($0 ~ /"name"/) {
        n = val($0, "name")
        oldns[n] = val($0, "ns_per_op")
        oldal[n] = val($0, "allocs_per_op")
    }
    next
}
$0 ~ /"name"/ {
    n = val($0, "name")
    if (!(n in oldns)) {
        printf "bench-compare: %s is new (no baseline in %s)\n", n, oldfile
        next
    }
    ns = val($0, "ns_per_op") + 0;     ons = oldns[n] + 0
    al = val($0, "allocs_per_op") + 0; oal = oldal[n] + 0
    if (ons > 0 && ns > ons * 1.2) {
        printf "::warning::bench-compare: %s ns/op regressed %.1f%% (%g -> %g)\n", n, (ns / ons - 1) * 100, ons, ns
        bad++
    }
    if (oal > 0 && al > oal * 1.2) {
        printf "::warning::bench-compare: %s allocs/op regressed %.1f%% (%g -> %g)\n", n, (al / oal - 1) * 100, oal, al
        bad++
    }
    compared++
}
END {
    printf "bench-compare: %d benchmark(s) compared, %d regression warning(s)\n", compared + 0, bad + 0
}
' "$OLD" "$NEW"

exit 0
