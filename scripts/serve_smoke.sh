#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the becaused serving daemon.
#
# Builds bin/becaused, starts it on an ephemeral port, POSTs a small
# inference twice (asserting 200 and a cache hit on the repeat), checks the
# cache counter on /metrics, then SIGTERMs the daemon and asserts a clean
# drain (exit 0). Needs only sh + curl + the Go toolchain.
set -eu

cd "$(dirname "$0")/.."

log() { echo "serve-smoke: $*"; }
fail() { log "FAIL: $*"; exit 1; }

go build -o bin/becaused ./cmd/becaused

OUT=$(mktemp)
BODY=$(mktemp)
trap 'kill "$PID" 2>/dev/null || true; rm -f "$OUT" "$BODY"' EXIT

bin/becaused -addr 127.0.0.1:0 -chain-workers 2 >"$OUT" 2>&1 &
PID=$!

# The daemon prints "becaused: listening on <addr>" once bound.
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^becaused: listening on //p' "$OUT")
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon died during startup: $(cat "$OUT")"
    sleep 0.1
done
[ -n "$ADDR" ] || fail "daemon never reported its address: $(cat "$OUT")"
log "daemon up on $ADDR (pid $PID)"

REQ='{"observations":[{"path":[64500,64510],"positive":true},{"path":[64500,64520],"positive":false},{"path":[64501,64510],"positive":true}],"options":{"seed":1,"mh_sweeps":200,"mh_burn_in":50,"hmc_iterations":50,"hmc_burn_in":10}}'

CODE=$(curl -s -o "$BODY" -w '%{http_code}' "http://$ADDR/healthz")
[ "$CODE" = 200 ] || fail "healthz returned $CODE"

CODE=$(curl -s -o "$BODY" -w '%{http_code}' -X POST -d "$REQ" "http://$ADDR/v1/infer")
[ "$CODE" = 200 ] || fail "first inference returned $CODE: $(cat "$BODY")"
grep -q '"schema_version":1' "$BODY" || fail "response missing schema_version: $(cat "$BODY")"
grep -q '"cached":false' "$BODY" || fail "first response claims to be cached: $(cat "$BODY")"
log "first inference OK (miss)"

HDRS=$(mktemp)
CODE=$(curl -s -o "$BODY" -D "$HDRS" -w '%{http_code}' -X POST -d "$REQ" "http://$ADDR/v1/infer")
[ "$CODE" = 200 ] || fail "repeat inference returned $CODE: $(cat "$BODY")"
grep -qi '^x-cache: hit' "$HDRS" || fail "repeat query not a cache hit: $(cat "$HDRS")"
rm -f "$HDRS"
grep -q '"cached":true' "$BODY" || fail "repeat response not marked cached: $(cat "$BODY")"
log "repeat inference served from cache"

curl -s "http://$ADDR/metrics" >"$BODY"
grep -q '^because_serve_cache_hits_total 1$' "$BODY" || fail "cache hit counter wrong: $(grep because_serve "$BODY" || true)"
grep -q '^because_serve_cache_misses_total 1$' "$BODY" || fail "cache miss counter wrong: $(grep because_serve "$BODY" || true)"
log "metrics exposition OK"

kill -TERM "$PID"
if ! wait "$PID"; then
    fail "daemon exited non-zero after SIGTERM: $(cat "$OUT")"
fi
grep -q 'becaused: drained, exiting' "$OUT" || fail "daemon did not report a clean drain: $(cat "$OUT")"
log "SIGTERM drained cleanly"
log "PASS"
