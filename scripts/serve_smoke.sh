#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the becaused serving daemon.
#
# Builds bin/becaused, starts it on an ephemeral port, POSTs a small
# inference twice (asserting 200 and a cache hit on the repeat), checks the
# cache counter on /metrics, drives the job API end to end — an inline
# ?stream=1 SSE inference, a GET /v1/jobs/{id} status poll (state, trace)
# and a buffered-events SSE replay — exercises the named-scenario API
# (list, a full server-side scenario run, cache hit on repeat, 404 on
# unknown names) and the observation-model field (a churn-model request,
# cache hit on its repeat, miss across models, 422 on unknown model
# names) — then SIGTERMs the daemon and asserts
# a clean drain (exit 0). Needs only sh + curl + the Go toolchain.
set -eu

cd "$(dirname "$0")/.."

log() { echo "serve-smoke: $*"; }
fail() { log "FAIL: $*"; exit 1; }

go build -o bin/becaused ./cmd/becaused

OUT=$(mktemp)
BODY=$(mktemp)
SSE=$(mktemp)
trap 'kill "$PID" 2>/dev/null || true; rm -f "$OUT" "$BODY" "$SSE"' EXIT

bin/becaused -addr 127.0.0.1:0 -chain-workers 2 >"$OUT" 2>&1 &
PID=$!

# The daemon prints "becaused: listening on <addr>" once bound.
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^becaused: listening on //p' "$OUT")
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon died during startup: $(cat "$OUT")"
    sleep 0.1
done
[ -n "$ADDR" ] || fail "daemon never reported its address: $(cat "$OUT")"
log "daemon up on $ADDR (pid $PID)"

REQ='{"observations":[{"path":[64500,64510],"positive":true},{"path":[64500,64520],"positive":false},{"path":[64501,64510],"positive":true}],"options":{"seed":1,"mh_sweeps":200,"mh_burn_in":50,"hmc_iterations":50,"hmc_burn_in":10}}'

CODE=$(curl -s -o "$BODY" -w '%{http_code}' "http://$ADDR/healthz")
[ "$CODE" = 200 ] || fail "healthz returned $CODE"

CODE=$(curl -s -o "$BODY" -w '%{http_code}' -X POST -d "$REQ" "http://$ADDR/v1/infer")
[ "$CODE" = 200 ] || fail "first inference returned $CODE: $(cat "$BODY")"
grep -q '"schema_version":1' "$BODY" || fail "response missing schema_version: $(cat "$BODY")"
grep -q '"cached":false' "$BODY" || fail "first response claims to be cached: $(cat "$BODY")"
log "first inference OK (miss)"

HDRS=$(mktemp)
CODE=$(curl -s -o "$BODY" -D "$HDRS" -w '%{http_code}' -X POST -d "$REQ" "http://$ADDR/v1/infer")
[ "$CODE" = 200 ] || fail "repeat inference returned $CODE: $(cat "$BODY")"
grep -qi '^x-cache: hit' "$HDRS" || fail "repeat query not a cache hit: $(cat "$HDRS")"
rm -f "$HDRS"
grep -q '"cached":true' "$BODY" || fail "repeat response not marked cached: $(cat "$BODY")"
log "repeat inference served from cache"

curl -s "http://$ADDR/metrics" >"$BODY"
grep -q '^because_serve_cache_hits_total 1$' "$BODY" || fail "cache hit counter wrong: $(grep because_serve "$BODY" || true)"
grep -q '^because_serve_cache_misses_total 1$' "$BODY" || fail "cache miss counter wrong: $(grep because_serve "$BODY" || true)"
log "metrics exposition OK"

# Job API, live: a fresh query (new seed, so no cache hit) over the inline
# ?stream=1 SSE mode must deliver a job frame, at least one progress
# event, and a terminal result frame on the same response.
REQ2='{"observations":[{"path":[64500,64510],"positive":true},{"path":[64500,64520],"positive":false},{"path":[64501,64510],"positive":true}],"options":{"seed":2,"mh_sweeps":200,"mh_burn_in":50,"hmc_iterations":50,"hmc_burn_in":10}}'
curl -s -N --max-time 60 -X POST -d "$REQ2" "http://$ADDR/v1/infer?stream=1" >"$SSE" \
    || fail "inline SSE inference failed: $(cat "$SSE")"
grep -q '^event: job$' "$SSE" || fail "stream carried no job frame: $(cat "$SSE")"
PROGRESS=$(grep -c '^event: progress$' "$SSE") || true
[ "${PROGRESS:-0}" -ge 1 ] || fail "stream carried no progress events: $(cat "$SSE")"
grep -q '^event: result$' "$SSE" || fail "stream carried no result frame: $(cat "$SSE")"
JOB=$(sed -n 's/.*"job_id":"\(job-[0-9]*\)".*/\1/p' "$SSE" | head -n 1)
[ -n "$JOB" ] || fail "stream carried no job ID: $(cat "$SSE")"
log "inline SSE stream OK ($PROGRESS progress events, $JOB)"

# The job record stays queryable afterwards: state, event count and the
# deterministic request trace.
CODE=$(curl -s -o "$BODY" -w '%{http_code}' "http://$ADDR/v1/jobs/$JOB")
[ "$CODE" = 200 ] || fail "job status poll returned $CODE: $(cat "$BODY")"
grep -q '"state":"done"' "$BODY" || fail "job not done: $(cat "$BODY")"
grep -q '"trace_id"' "$BODY" || fail "job status carries no trace: $(cat "$BODY")"
log "job status poll OK"

# The events endpoint replays the buffered progress gaplessly and closes
# with a done frame once the job is terminal.
curl -s -N --max-time 10 "http://$ADDR/v1/jobs/$JOB/events" >"$SSE" \
    || fail "job events stream failed: $(cat "$SSE")"
grep -q '^event: progress$' "$SSE" || fail "events replay carried no progress: $(cat "$SSE")"
grep -q '^event: done$' "$SSE" || fail "events replay carried no done frame: $(cat "$SSE")"
grep -q '"seq":0' "$SSE" || fail "events replay does not start at seq 0: $(cat "$SSE")"
log "job events replay OK"

# Named-scenario API: the corpus listing, then a full scenario execution
# (campaign + inference server-side) and a cache hit on the repeat.
CODE=$(curl -s -o "$BODY" -w '%{http_code}' "http://$ADDR/v1/scenarios")
[ "$CODE" = 200 ] || fail "scenario list returned $CODE: $(cat "$BODY")"
grep -q '"name":"small-world"' "$BODY" || fail "scenario list missing small-world: $(cat "$BODY")"
log "scenario list OK"

CODE=$(curl -s -o "$BODY" -w '%{http_code}' --max-time 120 -X POST "http://$ADDR/v1/scenarios/small-world/infer")
[ "$CODE" = 200 ] || fail "scenario inference returned $CODE: $(cat "$BODY")"
grep -q '"cached":false' "$BODY" || fail "first scenario response claims to be cached: $(cat "$BODY")"
grep -q '"name":"small-world"' "$BODY" || fail "scenario outcome missing name: $(cat "$BODY")"
grep -q '"failures"' "$BODY" && fail "scenario expectations failed: $(cat "$BODY")"
log "scenario inference OK (miss)"

HDRS=$(mktemp)
CODE=$(curl -s -o "$BODY" -D "$HDRS" -w '%{http_code}' -X POST "http://$ADDR/v1/scenarios/small-world/infer")
[ "$CODE" = 200 ] || fail "repeat scenario inference returned $CODE: $(cat "$BODY")"
grep -qi '^x-cache: hit' "$HDRS" || fail "repeat scenario query not a cache hit: $(cat "$HDRS")"
rm -f "$HDRS"
grep -q '"cached":true' "$BODY" || fail "repeat scenario response not marked cached: $(cat "$BODY")"
log "repeat scenario inference served from cache"

CODE=$(curl -s -o "$BODY" -w '%{http_code}' -X POST "http://$ADDR/v1/scenarios/no-such/infer")
[ "$CODE" = 404 ] || fail "unknown scenario returned $CODE, want 404: $(cat "$BODY")"
log "unknown scenario rejected with 404"

# Observation models: a churn-model request computes fresh (the model is
# part of the cache key), repeats hit, and the same observations under the
# default model miss — distinct models never share cache entries.
MREQ='{"observations":[{"path":[64500,64510],"positive":true},{"path":[64500,64520],"positive":false},{"path":[64501,64510],"positive":true}],"options":{"seed":9,"mh_sweeps":200,"mh_burn_in":50,"hmc_iterations":50,"hmc_burn_in":10,"model":"churn","churn_rate":0.05}}'
CODE=$(curl -s -o "$BODY" -w '%{http_code}' -X POST -d "$MREQ" "http://$ADDR/v1/infer")
[ "$CODE" = 200 ] || fail "churn-model inference returned $CODE: $(cat "$BODY")"
grep -q '"cached":false' "$BODY" || fail "first churn-model response claims to be cached: $(cat "$BODY")"
grep -q '"model":"churn"' "$BODY" || fail "churn-model result not stamped with the model: $(cat "$BODY")"
log "churn-model inference OK (miss)"

HDRS=$(mktemp)
CODE=$(curl -s -o "$BODY" -D "$HDRS" -w '%{http_code}' -X POST -d "$MREQ" "http://$ADDR/v1/infer")
[ "$CODE" = 200 ] || fail "repeat churn-model inference returned $CODE: $(cat "$BODY")"
grep -qi '^x-cache: hit' "$HDRS" || fail "repeat churn-model query not a cache hit: $(cat "$HDRS")"
rm -f "$HDRS"
log "repeat churn-model inference served from cache"

DREQ=$(printf '%s' "$MREQ" | sed 's/,"model":"churn","churn_rate":0.05//')
HDRS=$(mktemp)
CODE=$(curl -s -o "$BODY" -D "$HDRS" -w '%{http_code}' -X POST -d "$DREQ" "http://$ADDR/v1/infer")
[ "$CODE" = 200 ] || fail "default-model inference returned $CODE: $(cat "$BODY")"
grep -qi '^x-cache: miss' "$HDRS" || fail "default model shared the churn model's cache entry: $(cat "$HDRS")"
rm -f "$HDRS"
log "cache keyed by model (miss across models)"

BADREQ=$(printf '%s' "$MREQ" | sed 's/"model":"churn"/"model":"rov"/')
CODE=$(curl -s -o "$BODY" -w '%{http_code}' -X POST -d "$BADREQ" "http://$ADDR/v1/infer")
[ "$CODE" = 422 ] || fail "unknown model returned $CODE, want 422: $(cat "$BODY")"
grep -q 'model' "$BODY" || fail "unknown-model error does not name the field: $(cat "$BODY")"
log "unknown model rejected with 422"

kill -TERM "$PID"
if ! wait "$PID"; then
    fail "daemon exited non-zero after SIGTERM: $(cat "$OUT")"
fi
grep -q 'becaused: drained, exiting' "$OUT" || fail "daemon did not report a clean drain: $(cat "$OUT")"
log "SIGTERM drained cleanly"
log "PASS"
