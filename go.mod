module because

go 1.22
